// Tests for JointDist.

#include "relational/joint_dist.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mrsl {
namespace {

JointDist MakeDist() {
  // Over vars {1, 3} with cards {2, 3}.
  JointDist d({1, 3}, {2, 3});
  return d;
}

TEST(JointDistTest, StartsAllZero) {
  JointDist d = MakeDist();
  EXPECT_EQ(d.size(), 6u);
  EXPECT_DOUBLE_EQ(d.Sum(), 0.0);
}

TEST(JointDistTest, SetAndProbOf) {
  JointDist d = MakeDist();
  d.set_prob(d.codec().Encode({1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(d.ProbOf({1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(d.ProbOf({0, 0}), 0.0);
}

TEST(JointDistTest, NormalizeScalesToOne) {
  JointDist d = MakeDist();
  d.add_prob(0, 3.0);
  d.add_prob(5, 1.0);
  d.Normalize();
  EXPECT_DOUBLE_EQ(d.Sum(), 1.0);
  EXPECT_DOUBLE_EQ(d.prob(0), 0.75);
  EXPECT_DOUBLE_EQ(d.prob(5), 0.25);
}

TEST(JointDistTest, NormalizeOnZeroIsNoop) {
  JointDist d = MakeDist();
  d.Normalize();
  EXPECT_DOUBLE_EQ(d.Sum(), 0.0);
}

TEST(JointDistTest, SmoothAdditiveKeepsAllCellsPositive) {
  JointDist d = MakeDist();
  d.add_prob(2, 100.0);
  d.SmoothAdditive(1e-6);
  EXPECT_NEAR(d.Sum(), 1.0, 1e-12);
  for (uint64_t c = 0; c < d.size(); ++c) {
    EXPECT_GT(d.prob(c), 0.0);
  }
  EXPECT_GT(d.prob(2), 0.99);
}

TEST(JointDistTest, ArgMax) {
  JointDist d = MakeDist();
  d.set_prob(4, 0.9);
  d.set_prob(1, 0.1);
  EXPECT_EQ(d.ArgMax(), 4u);
}

TEST(JointDistTest, MarginalSumsCorrectly) {
  JointDist d = MakeDist();
  // p(a,b) over a in {0,1}, b in {0,1,2}.
  d.set_prob(d.codec().Encode({0, 0}), 0.1);
  d.set_prob(d.codec().Encode({0, 1}), 0.2);
  d.set_prob(d.codec().Encode({1, 2}), 0.7);
  auto ma = d.Marginal(0);
  ASSERT_EQ(ma.size(), 2u);
  EXPECT_NEAR(ma[0], 0.3, 1e-12);
  EXPECT_NEAR(ma[1], 0.7, 1e-12);
  auto mb = d.Marginal(1);
  ASSERT_EQ(mb.size(), 3u);
  EXPECT_NEAR(mb[1], 0.2, 1e-12);
}

TEST(JointDistTest, EntropyKnownValues) {
  JointDist d({0}, {4});
  d.set_prob(0, 1.0);
  EXPECT_NEAR(d.Entropy(), 0.0, 1e-12);  // point mass
  for (uint64_t c = 0; c < 4; ++c) d.set_prob(c, 0.25);
  EXPECT_NEAR(d.Entropy(), std::log(4.0), 1e-12);  // uniform = ln |dom|
  d.set_prob(0, 0.5);
  d.set_prob(1, 0.5);
  d.set_prob(2, 0.0);
  d.set_prob(3, 0.0);
  EXPECT_NEAR(d.Entropy(), std::log(2.0), 1e-12);
}

TEST(JointDistTest, TopKSortedAndTruncated) {
  JointDist d({0}, {5});
  d.set_prob(0, 0.1);
  d.set_prob(1, 0.4);
  d.set_prob(2, 0.05);
  d.set_prob(3, 0.25);
  d.set_prob(4, 0.2);
  auto top = d.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[1].first, 3u);
  EXPECT_EQ(top[2].first, 4u);
  EXPECT_DOUBLE_EQ(top[0].second, 0.4);
  // k larger than the domain returns everything.
  EXPECT_EQ(d.TopK(100).size(), 5u);
}

TEST(JointDistTest, TopKTieBreaksByCode) {
  JointDist d({0}, {3});
  for (uint64_t c = 0; c < 3; ++c) d.set_prob(c, 1.0 / 3.0);
  auto top = d.TopK(3);
  EXPECT_EQ(top[0].first, 0u);
  EXPECT_EQ(top[1].first, 1u);
  EXPECT_EQ(top[2].first, 2u);
}

TEST(JointDistTest, EmptyVarsSingleCell) {
  JointDist d({}, {});
  EXPECT_EQ(d.size(), 1u);
  d.add_prob(0, 1.0);
  d.Normalize();
  EXPECT_DOUBLE_EQ(d.prob(0), 1.0);
}

TEST(JointDistTest, ToStringShowsTopCombos) {
  auto schema = Schema::Create({Attribute("x", {"a", "b"}),
                                Attribute("y", {"u", "v"}),
                                Attribute("z", {"0", "1", "2"})});
  ASSERT_TRUE(schema.ok());
  JointDist d({0, 2}, {2, 3});
  d.set_prob(d.codec().Encode({1, 2}), 1.0);
  std::string s = d.ToString(*schema, 1);
  EXPECT_NE(s.find("x=b"), std::string::npos);
  EXPECT_NE(s.find("z=2"), std::string::npos);
  EXPECT_NE(s.find("p=1.0000"), std::string::npos);
}

}  // namespace
}  // namespace mrsl
