// Tests for Algorithm 1 (MRSL learning): meta-rule CPDs and weights on
// the paper's Fig 1 data, model structure invariants, and determinism.

#include "core/learner.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "paper_example.h"

namespace mrsl {
namespace {

LearnOptions Opts(double theta) {
  LearnOptions o;
  o.support_threshold = theta;
  return o;
}

TEST(LearnerTest, RejectsBadMinProb) {
  Relation rel = LoadFig1();
  LearnOptions o;
  o.min_prob = 0.0;
  EXPECT_FALSE(LearnModel(rel, o).ok());
}

TEST(LearnerTest, FailsOnEmptyCompletePart) {
  auto rel = Relation::FromCsv("a,b\n?,x\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(LearnModel(*rel, Opts(0.1)).ok());
}

TEST(LearnerTest, BuildsOneLatticePerAttribute) {
  Relation rel = LoadFig1();
  auto model = LearnModel(rel, Opts(0.05));
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_attrs(), 4u);
  for (AttrId a = 0; a < 4; ++a) {
    EXPECT_EQ(model->mrsl(a).head_attr(), a);
    EXPECT_GT(model->mrsl(a).num_rules(), 0u);
  }
  EXPECT_EQ(model->TotalMetaRules(),
            model->mrsl(0).num_rules() + model->mrsl(1).num_rules() +
                model->mrsl(2).num_rules() + model->mrsl(3).num_rules());
}

// On the 8 complete points of Fig 1 the root meta-rule P(age) has the
// empirical frequencies [4/8, 1/8, 3/8] (ages 20/30/40).
TEST(LearnerTest, RootCpdIsEmpiricalFrequency) {
  Relation rel = LoadFig1();
  auto model = LearnModel(rel, Opts(0.05));
  ASSERT_TRUE(model.ok());

  AttrId age = 0;
  ASSERT_TRUE(rel.schema().FindAttr("age", &age));
  const Mrsl& lattice = model->mrsl(age);
  ASSERT_GE(lattice.root(), 0);
  const MetaRule& root = lattice.rule(static_cast<size_t>(lattice.root()));
  EXPECT_DOUBLE_EQ(root.weight, 1.0);
  EXPECT_NEAR(root.cpd.prob(rel.schema().attr(age).Find("20")), 0.5, 1e-3);
  EXPECT_NEAR(root.cpd.prob(rel.schema().attr(age).Find("30")), 0.125,
              1e-3);
  EXPECT_NEAR(root.cpd.prob(rel.schema().attr(age).Find("40")), 0.375,
              1e-3);
}

// P(age | edu=HS) over Fig 1's complete points: HS points are t4, t6, t7
// (age 20), t16? (incomplete), t17 (age 40) -> among complete HS points
// {t4,t6,t7,t17}: wait t16 is incomplete; complete HS points are t4, t6,
// t7, t17 and also t14? (incomplete). So ages: 20,20,20,40 ->
// [3/4, 0, 1/4], with the zero smoothed to a tiny positive value.
TEST(LearnerTest, ConditionalCpdMatchesHandCount) {
  Relation rel = LoadFig1();
  auto model = LearnModel(rel, Opts(0.05));
  ASSERT_TRUE(model.ok());

  AttrId age = 0;
  AttrId edu = 0;
  ASSERT_TRUE(rel.schema().FindAttr("age", &age));
  ASSERT_TRUE(rel.schema().FindAttr("edu", &edu));
  ValueId hs = rel.schema().attr(edu).Find("HS");

  const Mrsl& lattice = model->mrsl(age);
  const MetaRule* found = nullptr;
  for (size_t i = 0; i < lattice.num_rules(); ++i) {
    const MetaRule& r = lattice.rule(i);
    if (r.body_size == 1 && r.body.value(edu) == hs) {
      found = &r;
      break;
    }
  }
  ASSERT_NE(found, nullptr) << "missing meta-rule P(age | edu=HS)";
  // Weight = supp(edu=HS) = 4/8 over the complete points.
  EXPECT_DOUBLE_EQ(found->weight, 0.5);
  EXPECT_EQ(found->support_count, 4u);
  EXPECT_NEAR(found->cpd.prob(rel.schema().attr(age).Find("20")), 0.75,
              1e-3);
  EXPECT_NEAR(found->cpd.prob(rel.schema().attr(age).Find("40")), 0.25,
              1e-3);
  // The unseen age=30 is smoothed to a positive probability.
  EXPECT_GT(found->cpd.prob(rel.schema().attr(age).Find("30")), 0.0);
  EXPECT_LT(found->cpd.prob(rel.schema().attr(age).Find("30")), 0.01);
}

TEST(LearnerTest, StatsAreConsistent) {
  Relation rel = LoadFig1();
  LearnStats stats;
  auto model = LearnModel(rel, Opts(0.05), &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(stats.num_meta_rules, model->TotalMetaRules());
  EXPECT_GT(stats.num_frequent_itemsets, 0u);
  EXPECT_GT(stats.num_association_rules, 0u);
  EXPECT_GE(stats.total_seconds, 0.0);
}

TEST(LearnerTest, HigherSupportSmallerModel) {
  Relation rel = LoadFig1();
  auto low = LearnModel(rel, Opts(0.05));
  auto high = LearnModel(rel, Opts(0.4));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_LE(high->TotalMetaRules(), low->TotalMetaRules());
}

TEST(LearnerTest, DeterministicAcrossRuns) {
  Relation rel = LoadFig1();
  auto m1 = LearnModel(rel, Opts(0.05));
  auto m2 = LearnModel(rel, Opts(0.05));
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_EQ(m1->TotalMetaRules(), m2->TotalMetaRules());
  for (AttrId a = 0; a < m1->num_attrs(); ++a) {
    ASSERT_EQ(m1->mrsl(a).num_rules(), m2->mrsl(a).num_rules());
    for (size_t i = 0; i < m1->mrsl(a).num_rules(); ++i) {
      EXPECT_EQ(m1->mrsl(a).rule(i).body, m2->mrsl(a).rule(i).body);
      EXPECT_EQ(m1->mrsl(a).rule(i).cpd.probs(),
                m2->mrsl(a).rule(i).cpd.probs());
    }
  }
}

TEST(LearnerTest, EveryMetaRuleCpdIsPositiveAndNormalized) {
  Rng rng(77);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(5, 3), &rng);
  Relation rel = bn.SampleRelation(2000, &rng);
  auto model = LearnModel(rel, Opts(0.01));
  ASSERT_TRUE(model.ok());
  for (AttrId a = 0; a < model->num_attrs(); ++a) {
    const Mrsl& lattice = model->mrsl(a);
    for (size_t i = 0; i < lattice.num_rules(); ++i) {
      const MetaRule& r = lattice.rule(i);
      double sum = 0.0;
      for (double p : r.cpd.probs()) {
        EXPECT_GT(p, 0.0);
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
      EXPECT_GT(r.weight, 0.0);
      EXPECT_LE(r.weight, 1.0);
      // Bodies never mention the head attribute.
      EXPECT_EQ(r.body.value(a), kMissingValue);
    }
  }
}

TEST(LearnerTest, LatticeSubsumptionConsistent) {
  // Every parent's body is a strict, agreeing subset of its child's.
  Rng rng(78);
  BayesNet bn = BayesNet::RandomInstance(Topology::Chain(4, 3), &rng);
  Relation rel = bn.SampleRelation(1500, &rng);
  auto model = LearnModel(rel, Opts(0.02));
  ASSERT_TRUE(model.ok());
  for (AttrId a = 0; a < model->num_attrs(); ++a) {
    const Mrsl& lattice = model->mrsl(a);
    for (size_t i = 0; i < lattice.num_rules(); ++i) {
      for (uint32_t p : lattice.parents(i)) {
        const MetaRule& child = lattice.rule(i);
        const MetaRule& parent = lattice.rule(p);
        EXPECT_TRUE(parent.body.Subsumes(child.body));
        EXPECT_EQ(parent.body_size + 1, child.body_size);
      }
    }
  }
}

TEST(LearnerTest, LearnFromRowsSubset) {
  Relation rel = LoadFig1();
  // Learn from just the first 4 complete rows.
  auto all = rel.CompleteRowIndices();
  std::vector<uint32_t> subset(all.begin(), all.begin() + 4);
  auto model = LearnModelFromRows(rel, subset, Opts(0.05));
  ASSERT_TRUE(model.ok());
  AttrId age = 0;
  ASSERT_TRUE(rel.schema().FindAttr("age", &age));
  const Mrsl& lattice = model->mrsl(age);
  ASSERT_GE(lattice.root(), 0);
  EXPECT_EQ(lattice.rule(static_cast<size_t>(lattice.root())).support_count,
            4u);
}

}  // namespace
}  // namespace mrsl
