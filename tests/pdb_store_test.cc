// Tests for the versioned BID store: incremental re-derivation touches
// only dirtied components (asserted by counting the engine's inference
// work), results are bit-identical to from-scratch derivations at any
// thread count, snapshots round-trip byte-identically and fail cleanly
// when damaged, concurrent readers always observe one consistent epoch,
// and the plan cache invalidates at block granularity.

#include "pdb/store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bn/bayes_net.h"
#include "core/learner.h"
#include "pdb/lazy.h"
#include "pdb/snapshot_io.h"
#include "util/csv.h"
#include "util/fault_file.h"

namespace mrsl {
namespace {

Tuple T(std::vector<int> vals) {
  Tuple t(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    t.set_value(static_cast<AttrId>(i), vals[i]);
  }
  return t;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    bn_ = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
    Relation train = bn_.SampleRelation(6000, &rng);
    schema_ = train.schema();
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(train, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  // Three subsumption components over the incomplete rows, pinned apart
  // by their (attr0, attr1) prefixes:
  //   A: (0,0,?,?) <- subsumes -> (0,0,1,?)
  //   B: (1,1,?,?)
  //   C: (2,2,0,?), (2,2,?,0), both subsumed by (2,2,?,?)
  // plus three complete rows (certain blocks).
  Relation BaseRelation() {
    Relation rel(schema_);
    EXPECT_TRUE(rel.Append(T({0, 1, 2, 0})).ok());    // row 0 complete
    EXPECT_TRUE(rel.Append(T({0, 0, -1, -1})).ok());  // a1
    EXPECT_TRUE(rel.Append(T({0, 0, 1, -1})).ok());   // a2
    EXPECT_TRUE(rel.Append(T({1, 0, 2, 1})).ok());    // row 3 complete
    EXPECT_TRUE(rel.Append(T({1, 1, -1, -1})).ok());  // b1
    EXPECT_TRUE(rel.Append(T({2, 2, 0, -1})).ok());   // c1
    EXPECT_TRUE(rel.Append(T({2, 2, -1, 0})).ok());   // c2
    EXPECT_TRUE(rel.Append(T({2, 2, -1, -1})).ok());  // c3
    EXPECT_TRUE(rel.Append(T({2, 0, 1, 1})).ok());    // row 8 complete
    return rel;
  }

  StoreOptions SOpts() {
    StoreOptions so;
    so.workload.gibbs.samples = 120;
    so.workload.gibbs.burn_in = 20;
    so.workload.gibbs.seed = 4242;
    return so;
  }

  // Asserts bit-exact equality of two databases, block by block.
  static void ExpectBitIdentical(const ProbDatabase& a,
                                 const ProbDatabase& b) {
    ASSERT_EQ(a.num_blocks(), b.num_blocks());
    for (size_t i = 0; i < a.num_blocks(); ++i) {
      const Block& ba = a.block(i);
      const Block& bb = b.block(i);
      ASSERT_EQ(ba.alternatives.size(), bb.alternatives.size())
          << "block " << i;
      for (size_t j = 0; j < ba.alternatives.size(); ++j) {
        EXPECT_EQ(ba.alternatives[j].tuple, bb.alternatives[j].tuple)
            << "block " << i << " alt " << j;
        // Bit-identical, not approximately equal.
        EXPECT_EQ(ba.alternatives[j].prob, bb.alternatives[j].prob)
            << "block " << i << " alt " << j;
      }
    }
  }

  BayesNet bn_;
  Schema schema_;
  MrslModel model_;
};

TEST_F(StoreTest, FirstCommitDerivesEverything) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.snapshot(), nullptr);

  auto stats = store.Commit(BaseRelation());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epoch, 1u);
  EXPECT_EQ(stats->components_total, 3u);
  EXPECT_EQ(stats->components_reinferred, 3u);
  EXPECT_EQ(stats->tuples_total, 6u);
  EXPECT_EQ(stats->tuples_reinferred, 6u);
  EXPECT_EQ(stats->blocks_total, 9u);
  EXPECT_EQ(stats->blocks_reused, 0u);
  EXPECT_EQ(engine.stats().tuples, 6u);

  SnapshotPtr snap = store.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->database().num_blocks(), snap->base().num_rows());
}

TEST_F(StoreTest, ApplyDeltaReinfersOnlyDirtyComponents) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  const uint64_t after_full = engine.stats().tuples;

  // Insert a fresh singleton component (1,2,?,?): disagrees with every
  // existing prefix, so nothing else is dirtied.
  RelationDelta insert_d;
  insert_d.inserts.push_back(T({1, 2, -1, -1}));
  auto stats = store.ApplyDelta(insert_d);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epoch, 2u);
  EXPECT_EQ(stats->components_total, 4u);
  EXPECT_EQ(stats->components_reinferred, 1u);
  EXPECT_EQ(stats->tuples_reinferred, 1u);
  // The engine saw exactly one new tuple — the inference-call count.
  EXPECT_EQ(engine.stats().tuples, after_full + 1);
  // Every pre-existing block was structurally reused.
  EXPECT_EQ(stats->blocks_reused, 9u);
  EXPECT_EQ(stats->blocks_total, 10u);

  // Updating a complete row triggers no inference at all.
  RelationDelta complete_d;
  complete_d.updates.push_back({0, T({1, 2, 0, 1})});
  stats = store.ApplyDelta(complete_d);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tuples_reinferred, 0u);
  EXPECT_EQ(engine.stats().tuples, after_full + 1);
  EXPECT_EQ(stats->blocks_reused, 9u);  // only the updated row rebuilt

  // Inserting (0,?,?,?) subsumes a1 and a2: component A (now 3 tuples)
  // is dirtied and re-inferred wholesale, B and C stay cached.
  RelationDelta subsume_d;
  subsume_d.inserts.push_back(T({0, -1, -1, -1}));
  stats = store.ApplyDelta(subsume_d);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->components_reinferred, 1u);
  EXPECT_EQ(stats->tuples_reinferred, 3u);
  EXPECT_EQ(engine.stats().tuples, after_full + 1 + 3);
}

TEST_F(StoreTest, DeletesDirtyOnlyTheirComponent) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  const uint64_t after_full = engine.stats().tuples;

  // Deleting c3 = (2,2,?,?) splits component C: the two survivors form
  // new (ordered) component keys, so they re-infer; A and B are
  // untouched.
  RelationDelta d;
  d.deletes.push_back(7);
  auto stats = store.ApplyDelta(d);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->index_stable);
  EXPECT_EQ(stats->tuples_reinferred, 2u);
  EXPECT_EQ(engine.stats().tuples, after_full + 2);
}

TEST_F(StoreTest, BitIdenticalToFromScratchAtAnyThreadCount) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  RelationDelta d1;
  d1.inserts.push_back(T({1, 2, -1, -1}));
  d1.updates.push_back({5, T({2, 2, 1, -1})});
  ASSERT_TRUE(store.ApplyDelta(d1).ok());
  RelationDelta d2;
  d2.inserts.push_back(T({0, -1, -1, -1}));
  d2.deletes.push_back(4);
  ASSERT_TRUE(store.ApplyDelta(d2).ok());

  SnapshotPtr incremental = store.snapshot();
  for (size_t threads : {1u, 2u, 8u}) {
    EngineOptions eo;
    eo.num_threads = threads;
    Engine fresh_engine(&model_, eo);
    BidStore fresh(&fresh_engine, SOpts());
    ASSERT_TRUE(fresh.Commit(incremental->base()).ok());
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectBitIdentical(incremental->database(),
                       fresh.snapshot()->database());
  }
}

TEST_F(StoreTest, SnapshotRoundTripIsByteIdentical) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  RelationDelta d;
  d.inserts.push_back(T({1, 2, -1, -1}));
  ASSERT_TRUE(store.ApplyDelta(d).ok());

  const std::string p1 = ::testing::TempDir() + "/store_rt_1.bin";
  const std::string p2 = ::testing::TempDir() + "/store_rt_2.bin";
  ASSERT_TRUE(store.SaveSnapshot(p1).ok());

  // Restoring re-runs zero inference: every component is in the file.
  Engine engine2(&model_);
  BidStore restored(&engine2, StoreOptions());
  ASSERT_TRUE(restored.Restore(p1).ok());
  EXPECT_EQ(engine2.stats().tuples, 0u);
  EXPECT_EQ(restored.epoch(), store.epoch());
  ExpectBitIdentical(store.snapshot()->database(),
                     restored.snapshot()->database());
  // The restored store adopts the saved derivation options.
  EXPECT_EQ(restored.options().workload.gibbs.samples,
            SOpts().workload.gibbs.samples);
  EXPECT_EQ(restored.options().workload.gibbs.seed,
            SOpts().workload.gibbs.seed);

  // save -> load -> save is byte-identical.
  ASSERT_TRUE(restored.SaveSnapshot(p2).ok());
  auto bytes1 = ReadFile(p1);
  auto bytes2 = ReadFile(p2);
  ASSERT_TRUE(bytes1.ok());
  ASSERT_TRUE(bytes2.ok());
  EXPECT_EQ(*bytes1, *bytes2);

  // A restored store keeps deriving incrementally and bit-identically.
  RelationDelta d2;
  d2.inserts.push_back(T({0, -1, -1, -1}));
  auto from_restored = restored.ApplyDelta(d2);
  auto from_original = store.ApplyDelta(d2);
  ASSERT_TRUE(from_restored.ok());
  ASSERT_TRUE(from_original.ok());
  EXPECT_EQ(from_restored->tuples_reinferred,
            from_original->tuples_reinferred);
  ExpectBitIdentical(store.snapshot()->database(),
                     restored.snapshot()->database());
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST_F(StoreTest, CorruptedSnapshotsFailCleanly) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  const std::string path = ::testing::TempDir() + "/store_corrupt.bin";
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());

  Engine engine2(&model_);
  BidStore victim(&engine2, StoreOptions());

  // Truncation at several depths: header, payload boundary, mid-payload.
  const std::vector<size_t> truncations = {0, 4, 20, bytes->size() / 2,
                                           bytes->size() - 1};
  for (size_t keep : truncations) {
    ASSERT_TRUE(WriteFile(path, bytes->substr(0, keep)).ok());
    Status st = victim.Restore(path);
    EXPECT_FALSE(st.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "kept " << keep;
    EXPECT_EQ(victim.snapshot(), nullptr);  // state untouched
  }

  // A flipped payload byte trips the checksum.
  {
    std::string damaged = *bytes;
    damaged[damaged.size() - 3] ^= 0x40;
    ASSERT_TRUE(WriteFile(path, damaged).ok());
    Status st = victim.Restore(path);
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
  }

  // Bad magic.
  {
    std::string damaged = *bytes;
    damaged[0] = 'X';
    ASSERT_TRUE(WriteFile(path, damaged).ok());
    EXPECT_EQ(victim.Restore(path).code(), StatusCode::kCorruption);
  }

  // The intact file still restores after all that.
  ASSERT_TRUE(WriteFile(path, *bytes).ok());
  EXPECT_TRUE(victim.Restore(path).ok());
  std::remove(path.c_str());
}

// Snapshot saves are atomic: fail the save at EVERY filesystem step
// (temp-file open, write, fsync, rename, directory sync) and the
// previously saved epoch must survive intact — a reader never sees a
// half-written file where its snapshot used to be.
TEST_F(StoreTest, SnapshotSaveIsAtomicUnderMidSaveCrashes) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  const std::string path = ::testing::TempDir() + "/atomic_save.bin";
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  auto original = ReadFile(path);
  ASSERT_TRUE(original.ok());

  // Move the store ahead so the interrupted save would write different
  // bytes than the file already holds.
  RelationDelta d;
  d.inserts.push_back(T({1, 2, -1, -1}));
  ASSERT_TRUE(store.ApplyDelta(d).ok());

  for (const char* fail_op : {"open", "write", "sync", "rename"}) {
    SCOPED_TRACE(std::string("failing op ") + fail_op);
    SetFaultHook([fail_op](const char* op, const std::string& target) {
      if (std::string(op) == fail_op &&
          target.find("atomic_save.bin") != std::string::npos) {
        return Status::IOError(std::string("injected ") + fail_op +
                               " crash");
      }
      return Status::OK();
    });
    Status saved = store.SaveSnapshot(path);
    SetFaultHook(nullptr);
    ASSERT_FALSE(saved.ok());

    // The old epoch is still there, byte for byte, and still restores.
    auto after = ReadFile(path);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, *original);
    Engine engine2(&model_);
    BidStore restored(&engine2, StoreOptions());
    EXPECT_TRUE(restored.Restore(path).ok());
    EXPECT_EQ(restored.epoch(), 1u);
  }

  // A directory-sync failure after the rename may keep either epoch —
  // both are complete files; what it must never leave is a torn one.
  SetFaultHook([](const char* op, const std::string&) {
    // The syncdir check sees the parent directory, not the file.
    if (std::string(op) == "syncdir") {
      return Status::IOError("injected syncdir crash");
    }
    return Status::OK();
  });
  Status saved = store.SaveSnapshot(path);
  SetFaultHook(nullptr);
  EXPECT_FALSE(saved.ok());
  {
    Engine engine2(&model_);
    BidStore restored(&engine2, StoreOptions());
    EXPECT_TRUE(restored.Restore(path).ok());
  }

  // With the faults gone the save goes through and the file advances.
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  Engine engine3(&model_);
  BidStore advanced(&engine3, StoreOptions());
  ASSERT_TRUE(advanced.Restore(path).ok());
  EXPECT_EQ(advanced.epoch(), 2u);
  std::remove(path.c_str());
}

TEST_F(StoreTest, ConcurrentReadersSeeOneConsistentEpoch) {
  Engine engine(&model_);
  StoreOptions so = SOpts();
  so.workload.gibbs.samples = 40;  // keep the commit loop fast
  so.workload.gibbs.burn_in = 10;
  BidStore store(&engine, so);
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> consistent{true};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&]() {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotPtr snap = store.snapshot();
        // One block per row, monotone epochs, and the epoch's database
        // agrees with its own base relation — a torn epoch would break
        // at least one of these.
        if (snap == nullptr || snap->epoch() < last_epoch ||
            snap->database().num_blocks() != snap->base().num_rows()) {
          consistent.store(false);
          break;
        }
        for (size_t b = 0; b < snap->database().num_blocks(); ++b) {
          if (snap->base().row(b).IsComplete() &&
              snap->database().block(b).alternatives.size() != 1) {
            consistent.store(false);
            break;
          }
        }
        last_epoch = snap->epoch();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Alternate inserts and deletes so block counts keep moving; keep
  // committing until the readers have observably raced the writer (a
  // loaded machine can delay their start), bounded by a commit cap.
  size_t commits = 0;
  while (commits < 500 && (commits < 10 || reads.load() < 2000)) {
    RelationDelta d;
    if (commits % 2 == 0) {
      d.inserts.push_back(T({1, 2, -1, -1}));
    } else {
      d.deletes.push_back(
          static_cast<uint32_t>(store.snapshot()->base().num_rows() - 1));
    }
    ASSERT_TRUE(store.ApplyDelta(d).ok());
    ++commits;
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_TRUE(consistent.load());
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.epoch(), 1u + commits);
}

TEST_F(StoreTest, PlanCacheHitsAndBlockGranularInvalidation) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());

  // count rows with attr0 = label(0).
  const std::string plan_text = "count(select(" + schema_.attr(0).name() +
                                "=" + schema_.attr(0).label(0) + "; scan))";
  auto first = store.Query(plan_text);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  auto second = store.Query(plan_text);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->eval.get(), first->eval.get());

  // Row 3 is complete with attr0 = 1: updating it to another attr0 = 1
  // tuple rebuilds a block the plan can neither read now nor gain rows
  // from, so the entry survives the commit.
  RelationDelta harmless;
  harmless.updates.push_back({3, T({1, 0, 0, 0})});
  ASSERT_TRUE(store.ApplyDelta(harmless).ok());
  auto carried = store.Query(plan_text);
  ASSERT_TRUE(carried.ok());
  EXPECT_TRUE(carried->from_cache);
  EXPECT_EQ(carried->epoch, 2u);
  // ... and the carried answer matches a fresh evaluation.
  {
    Engine fresh_engine(&model_);
    BidStore fresh(&fresh_engine, SOpts());
    ASSERT_TRUE(fresh.Commit(store.snapshot()->base()).ok());
    auto recomputed = fresh.Query(plan_text);
    ASSERT_TRUE(recomputed.ok());
    EXPECT_EQ(carried->eval->count.expected.lo,
              recomputed->eval->count.expected.lo);
    EXPECT_EQ(carried->eval->count.expected.hi,
              recomputed->eval->count.expected.hi);
  }

  // Updating the same row to attr0 = 0 makes its block satisfy the
  // selection: the entry must be invalidated and re-evaluated.
  RelationDelta relevant;
  relevant.updates.push_back({3, T({0, 0, 0, 0})});
  ASSERT_TRUE(store.ApplyDelta(relevant).ok());
  auto after = store.Query(plan_text);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);
  // One more certain row matches now: E[count] grows by exactly 1.
  EXPECT_EQ(after->eval->count.expected.lo,
            carried->eval->count.expected.lo + 1.0);

  // Deletes are not index-stable: everything is dropped.
  ASSERT_TRUE(store.Query(plan_text)->from_cache);
  RelationDelta del;
  del.deletes.push_back(0);
  ASSERT_TRUE(store.ApplyDelta(del).ok());
  EXPECT_FALSE(store.Query(plan_text)->from_cache);
}

// Satellite regression: compiled answers depend on the compiler
// configuration, so the cache key must carry it. Before the fix the key
// was epoch + canonical text only — an anytime query at width target A
// would be served a stale envelope computed for width target B, and a
// plain Query could be served a compiled envelope (or vice versa).
TEST_F(StoreTest, CompiledQueriesKeyTheCacheByCompilerConfiguration) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());

  // Self-join on the (incomplete) attr2 projected onto attr1: correlated
  // lineage, so different world budgets genuinely produce different
  // envelopes.
  const std::string a1 = schema_.attr(1).name();
  const std::string a2 = schema_.attr(2).name();
  const std::string plan_text =
      "project(" + a1 + "; join(scan; scan; " + a2 + "=" + a2 + "))";

  auto plain = store.Query(plan_text);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->from_cache);
  EXPECT_FALSE(plain->eval->compiled);

  CompileOptions refined;  // defaults: full world budget, no width target
  CompileOptions oblivious;
  oblivious.max_worlds_per_group = 0;  // envelope = the fixed dissociation

  // A compiled query must not be served the plain evaluator's entry...
  auto compiled = store.Query(plan_text, refined);
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(compiled->from_cache);
  EXPECT_TRUE(compiled->eval->compiled);

  // ...nor an envelope computed under a different world budget...
  auto base = store.Query(plan_text, oblivious);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(base->from_cache);

  // ...nor one computed for a different width target (the original bug).
  CompileOptions wide = refined;
  wide.width_target = 0.5;
  CompileOptions narrow = refined;
  narrow.width_target = 0.05;
  auto at_wide = store.Query(plan_text, wide);
  auto at_narrow = store.Query(plan_text, narrow);
  ASSERT_TRUE(at_wide.ok());
  ASSERT_TRUE(at_narrow.ok());
  EXPECT_FALSE(at_wide->from_cache);
  EXPECT_FALSE(at_narrow->from_cache);
  EXPECT_NE(at_wide->eval.get(), at_narrow->eval.get());

  // Repeats at the SAME configuration hit and serve the same entry.
  auto again = store.Query(plan_text, oblivious);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);
  EXPECT_EQ(again->eval.get(), base->eval.get());
  auto plain_again = store.Query(plan_text);
  ASSERT_TRUE(plain_again.ok());
  EXPECT_TRUE(plain_again->from_cache);
  EXPECT_EQ(plain_again->eval.get(), plain->eval.get());
  EXPECT_FALSE(plain_again->eval->compiled);

  // Refinement never loosens the envelope relative to the base, and a
  // cached compiled body is clock-free (hit == miss byte-for-byte).
  EXPECT_LE(compiled->eval->compile_stats.mean_width_final,
            base->eval->compile_stats.mean_width_final);
  EXPECT_EQ(compiled->eval->compile_stats.compile_seconds, 0.0);
}

TEST_F(StoreTest, LazyDeriverSeedsFromSnapshot) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  const uint64_t after_full = engine.stats().tuples;

  Relation rel = store.snapshot()->base();
  LazyDeriver lazy(&engine, &rel, SOpts().workload.gibbs);
  EXPECT_EQ(lazy.SeedFromSnapshot(*store.snapshot()), 6u);
  EXPECT_EQ(lazy.materialized(), 6u);

  // Every query over the seeded rows is a pure cache lookup.
  Predicate pred = Predicate::Eq(2, 0);
  auto count = lazy.ExpectedCount(pred);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(engine.stats().tuples, after_full);
}

// Regression: an index-stable update that rewrites a row to a tuple
// some OTHER row already had reuses that tuple's block object, but the
// rewritten index still changed content — the plan cache must treat it
// as dirty (positional, not content-keyed, dirty tracking).
TEST_F(StoreTest, PlanCacheInvalidatesWhenRowCopiesAnExistingTuple) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());

  const std::string plan_text = "count(select(" + schema_.attr(0).name() +
                                "=" + schema_.attr(0).label(0) + "; scan))";
  auto before = store.Query(plan_text);
  ASSERT_TRUE(before.ok());

  // Row 3 is complete with attr0 = 1 (not matching); rewrite it to row
  // 0's exact tuple, which has attr0 = 0 (matching). The block object
  // is shared with row 0's, yet block index 3's content changed.
  RelationDelta d;
  d.updates.push_back({3, T({0, 1, 2, 0})});
  ASSERT_TRUE(store.ApplyDelta(d).ok());

  auto after = store.Query(plan_text);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);
  EXPECT_EQ(after->eval->count.expected.lo,
            before->eval->count.expected.lo + 1.0);
}

// A pinned-snapshot reader (the server's QueryOn) finishing after a
// fresher evaluation was cached must not evict the servable entry with
// its stale one.
TEST_F(StoreTest, PlanCacheKeepsNewerEntryOverStaleInsert) {
  ProbDatabase db(schema_);
  PlanCache cache(4);
  auto fresh_eval = std::make_shared<PlanEvaluation>();
  auto stale_eval = std::make_shared<PlanEvaluation>();
  cache.Insert("p", ScanPlan(0), /*epoch=*/2, {}, fresh_eval);
  cache.Insert("p", ScanPlan(0), /*epoch=*/1, {}, stale_eval);
  EXPECT_EQ(cache.Lookup("p", 2).get(), fresh_eval.get());
  // A genuinely newer insert still replaces.
  auto newer_eval = std::make_shared<PlanEvaluation>();
  cache.Insert("p", ScanPlan(0), /*epoch=*/3, {}, newer_eval);
  EXPECT_EQ(cache.Lookup("p", 3).get(), newer_eval.get());
}

// An entry can only be carried forward by the commit that immediately
// follows its evaluation epoch: an older one (inserted by a reader
// pinned on a past snapshot while commits raced ahead) skipped an
// invalidation pass and must be dropped, however harmless the current
// commit's dirty set looks.
TEST_F(StoreTest, PlanCacheDropsEntriesThatSkippedACommit) {
  ProbDatabase db(schema_);
  PlanCache cache(4);
  auto eval = std::make_shared<PlanEvaluation>();
  cache.Insert("p", ScanPlan(0), /*epoch=*/1, {}, eval);
  ASSERT_NE(cache.Lookup("p", 1), nullptr);

  // Epoch jumps 1 -> 3 from this entry's point of view: drop it even
  // though the commit dirtied nothing.
  cache.OnCommit(/*new_epoch=*/3, /*index_stable=*/true, {}, db);
  EXPECT_EQ(cache.Lookup("p", 3), nullptr);

  // The adjacent-epoch entry does carry forward.
  cache.Insert("q", ScanPlan(0), /*epoch=*/2, {}, eval);
  cache.OnCommit(/*new_epoch=*/3, /*index_stable=*/true, {}, db);
  EXPECT_NE(cache.Lookup("q", 3), nullptr);
}

// QueryBatch (the server's batched query hook) pins ONE snapshot for
// the whole batch: answers all carry that epoch even when a commit
// lands mid-batch, and duplicates within the batch hit the cache.
TEST_F(StoreTest, QueryBatchPinsOneSnapshotAcrossCommits) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());

  const std::string count_plan = "count(select(" + schema_.attr(0).name() +
                                 "=" + schema_.attr(0).label(0) +
                                 "; scan))";
  const std::string exists_plan = "exists(scan)";
  auto results =
      store.QueryBatch({count_plan, exists_plan, count_plan, "bogus("});
  ASSERT_EQ(results.size(), 4u);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  ASSERT_TRUE(results[2].ok());
  EXPECT_FALSE(results[3].ok());  // per-plan errors don't sink the batch
  EXPECT_EQ(results[0]->epoch, 1u);
  EXPECT_EQ(results[1]->epoch, 1u);
  EXPECT_FALSE(results[0]->from_cache);
  EXPECT_TRUE(results[2]->from_cache);  // duplicate hits within the batch
  EXPECT_EQ(results[2]->eval.get(), results[0]->eval.get());

  // QueryOn keeps answering on an explicitly pinned past epoch while
  // the store moves on; a pinned-snapshot evaluation computed after the
  // commit matches the pre-commit answer bit for bit.
  SnapshotPtr pinned = store.snapshot();
  RelationDelta d;
  d.inserts.push_back(T({1, 2, -1, -1}));
  ASSERT_TRUE(store.ApplyDelta(d).ok());
  EXPECT_EQ(store.epoch(), 2u);
  auto stale = store.QueryOn(pinned, exists_plan);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->epoch, 1u);
  EXPECT_EQ(stale->eval->exists.prob.lo,
            results[1]->eval->exists.prob.lo);
  EXPECT_EQ(stale->eval->exists.prob.hi,
            results[1]->eval->exists.prob.hi);

  // The current epoch still answers through Query/the cache as usual.
  auto fresh = store.Query(exists_plan);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->epoch, 2u);
}

// SerializeCurrentSnapshot (the GET /snapshot payload) returns exactly
// the bytes SaveSnapshot would write.
TEST_F(StoreTest, SerializedSnapshotBytesMatchTheSavedFile) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  EXPECT_FALSE(store.SerializeCurrentSnapshot().ok());  // no epoch yet
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());

  uint64_t epoch = 0;
  auto bytes = store.SerializeCurrentSnapshot(&epoch);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(epoch, 1u);
  const std::string path = ::testing::TempDir() + "/serialize_match.bin";
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  auto file_bytes = ReadFile(path);
  ASSERT_TRUE(file_bytes.ok());
  EXPECT_EQ(*bytes, *file_bytes);
  std::remove(path.c_str());
}

TEST_F(StoreTest, RejectsAllAtATimeMode) {
  Engine engine(&model_);
  StoreOptions so = SOpts();
  so.mode = SamplingMode::kAllAtATime;
  BidStore store(&engine, so);
  EXPECT_FALSE(store.Commit(BaseRelation()).ok());
}

// The epoch compare-and-swap guard behind concurrent POST /update: an
// index-addressed delta authored against epoch E must not apply after
// another commit moved the store past E.
TEST_F(StoreTest, ApplyDeltaHonorsExpectedEpoch) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());

  // Matching guard: applies.
  RelationDelta d1;
  d1.deletes.push_back(7);
  ASSERT_TRUE(store.ApplyDelta(d1, /*expected_epoch=*/1).ok());
  EXPECT_EQ(store.epoch(), 2u);

  // Stale guard (another commit won the race): FailedPrecondition and
  // nothing published.
  RelationDelta d2;
  d2.deletes.push_back(0);
  auto stale = store.ApplyDelta(d2, /*expected_epoch=*/1);
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.epoch(), 2u);

  // expected_epoch = 0 skips the guard (the single-writer CLI path).
  ASSERT_TRUE(store.ApplyDelta(d2).ok());
  EXPECT_EQ(store.epoch(), 3u);
}

TEST_F(StoreTest, ApplyDeltaRequiresAnEpoch) {
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  RelationDelta d;
  d.inserts.push_back(T({0, 0, 0, 0}));
  EXPECT_EQ(store.ApplyDelta(d).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mrsl
