// Tests for holdout-based support-threshold tuning.

#include "core/tuning.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"

namespace mrsl {
namespace {

TEST(TuningTest, ValidatesOptions) {
  Rng rng(1);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation rel = bn.SampleRelation(500, &rng);

  TuningOptions opts;
  opts.candidates.clear();
  EXPECT_FALSE(TuneSupportThreshold(rel, opts).ok());

  opts = TuningOptions();
  opts.holdout_fraction = 1.5;
  EXPECT_FALSE(TuneSupportThreshold(rel, opts).ok());
}

TEST(TuningTest, NeedsEnoughCompleteRows) {
  Rng rng(2);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation rel = bn.SampleRelation(10, &rng);
  EXPECT_FALSE(TuneSupportThreshold(rel, TuningOptions()).ok());
}

TEST(TuningTest, ScoresEveryCandidateAndPicksBestLogLoss) {
  Rng rng(3);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(5, 2), &rng);
  Relation rel = bn.SampleRelation(8000, &rng);

  TuningOptions opts;
  opts.candidates = {0.002, 0.02, 0.2};
  auto result = TuneSupportThreshold(rel, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->scores.size(), 3u);

  double best_loss = 1e30;
  for (const CandidateScore& s : result->scores) {
    EXPECT_GT(s.evaluations, 0u);
    EXPECT_GE(s.top1, 0.0);
    EXPECT_LE(s.top1, 1.0);
    EXPECT_GT(s.model_size, 0u);
    best_loss = std::min(best_loss, s.log_loss);
  }
  // best_support is the argmin of log-loss.
  for (const CandidateScore& s : result->scores) {
    if (s.support == result->best_support) {
      EXPECT_DOUBLE_EQ(s.log_loss, best_loss);
    }
  }
  // With 8k rows, a permissive threshold should beat θ=0.2 (which prunes
  // almost everything) — the Fig 6 shape on real scoring.
  EXPECT_LT(result->best_support, 0.2);
}

TEST(TuningTest, ModelSizeShrinksWithThreshold) {
  Rng rng(4);
  BayesNet bn = BayesNet::RandomInstance(Topology::Chain(4, 3), &rng);
  Relation rel = bn.SampleRelation(5000, &rng);
  TuningOptions opts;
  opts.candidates = {0.005, 0.05, 0.3};
  auto result = TuneSupportThreshold(rel, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->scores[0].model_size, result->scores[1].model_size);
  EXPECT_GE(result->scores[1].model_size, result->scores[2].model_size);
}

TEST(TuningTest, DeterministicGivenSeed) {
  Rng rng(5);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation rel = bn.SampleRelation(3000, &rng);
  TuningOptions opts;
  opts.candidates = {0.01, 0.1};
  auto r1 = TuneSupportThreshold(rel, opts);
  auto r2 = TuneSupportThreshold(rel, opts);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->scores.size(), r2->scores.size());
  for (size_t i = 0; i < r1->scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1->scores[i].log_loss, r2->scores[i].log_loss);
    EXPECT_DOUBLE_EQ(r1->scores[i].top1, r2->scores[i].top1);
  }
  EXPECT_DOUBLE_EQ(r1->best_support, r2->best_support);
}

TEST(TuningTest, MaxEvaluationsCapsWork) {
  Rng rng(6);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation rel = bn.SampleRelation(3000, &rng);
  TuningOptions opts;
  opts.candidates = {0.01};
  opts.max_evaluations = 50;
  auto result = TuneSupportThreshold(rel, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scores[0].evaluations, 50u);
}

TEST(TuningTest, IncompleteRowsAreIgnored) {
  // Tuning only uses complete rows; interleaving incomplete ones must not
  // change the outcome.
  Rng rng(7);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation complete = bn.SampleRelation(2000, &rng);
  Relation mixed(complete.schema());
  for (const Tuple& row : complete.rows()) {
    ASSERT_TRUE(mixed.Append(row).ok());
    Tuple broken = row;
    broken.set_value(0, kMissingValue);
    broken.set_value(2, kMissingValue);
    ASSERT_TRUE(mixed.Append(std::move(broken)).ok());
  }
  TuningOptions opts;
  opts.candidates = {0.02};
  auto a = TuneSupportThreshold(complete, opts);
  auto b = TuneSupportThreshold(mixed, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->scores[0].log_loss, b->scores[0].log_loss);
}

}  // namespace
}  // namespace mrsl
