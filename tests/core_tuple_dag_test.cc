// Tests for the tuple DAG (Sec V-B, Fig 3): dedup, Hasse structure,
// descendant closure, and roots.

#include "core/tuple_dag.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace mrsl {
namespace {

Tuple T(std::vector<ValueId> v) { return Tuple(std::move(v)); }
constexpr ValueId M = kMissingValue;

// Fig 3's workload: t1, t3, t5, t8, t11, t12 (age 20=0/30=1/40=2,
// edu HS=0/BS=1/MS=2, inc, nw).
std::vector<Tuple> Fig3Workload() {
  return {
      T({0, 0, M, M}),  // t1: 20 HS ? ?
      T({0, M, 0, M}),  // t3: 20 ? 50K ?
      T({0, M, M, M}),  // t5: 20 ? ? ?
      T({M, 0, M, M}),  // t8: ? HS ? ?
      T({1, 0, M, M}),  // t11: 30 HS ? ?
      T({1, 2, M, M}),  // t12: 30 MS ? ?
  };
}

TEST(TupleDagTest, Fig3Structure) {
  TupleDag dag(Fig3Workload());
  ASSERT_EQ(dag.num_nodes(), 6u);

  // Roots: t5 (node 2) and t8 (node 3) — the top row of Fig 3 — plus
  // t12 (node 5), which nothing subsumes (its edu=MS disagrees with t8).
  auto roots = dag.Roots();
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(roots, (std::vector<uint32_t>{2, 3, 5}));

  // t1 (node 0) is a child of both t5 and t8.
  auto p0 = dag.parents(0);
  std::sort(p0.begin(), p0.end());
  EXPECT_EQ(p0, (std::vector<uint32_t>{2, 3}));

  // t3 (node 1) is a child of t5 only.
  EXPECT_EQ(dag.parents(1), (std::vector<uint32_t>{2}));

  // t11 (node 4) is a child of t8 only.
  EXPECT_EQ(dag.parents(4), (std::vector<uint32_t>{3}));

  // t12 (node 5) assigns edu=MS, which disagrees with t8's edu=HS, so
  // nothing subsumes it: t12 is an isolated root.
  EXPECT_TRUE(dag.parents(5).empty());
  roots = dag.Roots();
  EXPECT_NE(std::find(roots.begin(), roots.end(), 5u), roots.end());
}

TEST(TupleDagTest, DescendantsAreTransitive) {
  TupleDag dag(Fig3Workload());
  // t5 (node 2) subsumes t1 and t3.
  auto d = dag.descendants(2);
  std::sort(d.begin(), d.end());
  EXPECT_EQ(d, (std::vector<uint32_t>{0, 1}));
  // t8 (node 3) subsumes t1 and t11.
  d = dag.descendants(3);
  std::sort(d.begin(), d.end());
  EXPECT_EQ(d, (std::vector<uint32_t>{0, 4}));
}

TEST(TupleDagTest, DeduplicatesIdenticalTuples) {
  std::vector<Tuple> workload = {T({0, M}), T({0, M}), T({M, 1}),
                                 T({0, M})};
  TupleDag dag(workload);
  EXPECT_EQ(dag.num_nodes(), 2u);
  EXPECT_EQ(dag.workload_to_node().size(), 4u);
  EXPECT_EQ(dag.workload_to_node()[0], dag.workload_to_node()[1]);
  EXPECT_EQ(dag.workload_to_node()[0], dag.workload_to_node()[3]);
  EXPECT_NE(dag.workload_to_node()[0], dag.workload_to_node()[2]);
  EXPECT_EQ(dag.workload_rows(dag.workload_to_node()[0]).size(), 3u);
}

TEST(TupleDagTest, ChainOfThreeLevels) {
  // a ? ? ?  >  a b ? ?  >  a b c ?
  std::vector<Tuple> workload = {
      T({0, M, M, M}),
      T({0, 1, M, M}),
      T({0, 1, 2, M}),
  };
  TupleDag dag(workload);
  EXPECT_EQ(dag.Roots(), (std::vector<uint32_t>{0}));
  // Hasse: 0 -> 1 -> 2 (no transitive edge 0 -> 2 among parents).
  EXPECT_EQ(dag.parents(1), (std::vector<uint32_t>{0}));
  EXPECT_EQ(dag.parents(2), (std::vector<uint32_t>{1}));
  // But descendants of 0 include both.
  auto d = dag.descendants(0);
  std::sort(d.begin(), d.end());
  EXPECT_EQ(d, (std::vector<uint32_t>{1, 2}));
}

TEST(TupleDagTest, IncomparableTuplesAllRoots) {
  std::vector<Tuple> workload = {T({0, M}), T({1, M}), T({M, 0})};
  TupleDag dag(workload);
  EXPECT_EQ(dag.Roots().size(), 3u);
}

TEST(TupleDagTest, EmptyWorkload) {
  TupleDag dag({});
  EXPECT_EQ(dag.num_nodes(), 0u);
  EXPECT_TRUE(dag.Roots().empty());
}

// Property: Hasse edges are a transitive reduction — parents never
// subsume another parent of the same node, and every ancestor is
// reachable.
class TupleDagPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TupleDagPropertyTest, HasseIsMinimalAndComplete) {
  Rng rng(GetParam());
  std::vector<Tuple> workload;
  for (int i = 0; i < 40; ++i) {
    Tuple t(5);
    for (AttrId a = 0; a < 5; ++a) {
      if (rng.Bernoulli(0.5)) {
        t.set_value(a, static_cast<ValueId>(rng.UniformInt(2)));
      }
    }
    if (t.IsComplete()) t.set_value(0, kMissingValue);
    workload.push_back(std::move(t));
  }
  TupleDag dag(workload);

  for (size_t v = 0; v < dag.num_nodes(); ++v) {
    const auto& parents = dag.parents(v);
    // Minimality: no parent subsumes another parent of v.
    for (uint32_t p1 : parents) {
      for (uint32_t p2 : parents) {
        if (p1 == p2) continue;
        EXPECT_FALSE(dag.node(p1).Subsumes(dag.node(p2)));
      }
    }
    // Every parent is an ancestor (sanity).
    for (uint32_t p : parents) {
      EXPECT_TRUE(dag.node(p).Subsumes(dag.node(v)));
    }
    // Completeness: every strict subsumer is reachable via parents.
    for (size_t u = 0; u < dag.num_nodes(); ++u) {
      if (u == v || !dag.node(u).Subsumes(dag.node(v))) continue;
      // BFS up the parent edges.
      std::vector<uint32_t> frontier = parents;
      bool found = false;
      size_t guard = 0;
      while (!frontier.empty() && !found && guard++ < 1000) {
        uint32_t x = frontier.back();
        frontier.pop_back();
        if (x == u) {
          found = true;
          break;
        }
        for (uint32_t p : dag.parents(x)) frontier.push_back(p);
      }
      EXPECT_TRUE(found) << "ancestor " << u << " unreachable from " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleDagPropertyTest,
                         ::testing::Values(3, 6, 9, 12));

}  // namespace
}  // namespace mrsl
