// Tests for dataset generation: split sizes, masking counts, uniform
// attribute choice, and determinism.

#include "expfw/datagen.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"

namespace mrsl {
namespace {

BayesNet TestNet(uint64_t seed = 1) {
  Rng rng(seed);
  return BayesNet::RandomInstance(Topology::Crown(5, 2), &rng);
}

TEST(DatagenTest, MaskRelationMasksExactCount) {
  BayesNet bn = TestNet();
  Rng rng(2);
  Relation rel = bn.SampleRelation(200, &rng);
  for (size_t k = 1; k <= 4; ++k) {
    Rng mask_rng(3);
    Relation masked = MaskRelation(rel, k, &mask_rng);
    ASSERT_EQ(masked.num_rows(), rel.num_rows());
    for (size_t i = 0; i < masked.num_rows(); ++i) {
      EXPECT_EQ(masked.row(i).NumMissing(), k);
      // Unmasked cells agree with the original.
      for (AttrId a = 0; a < 5; ++a) {
        if (masked.row(i).value(a) != kMissingValue) {
          EXPECT_EQ(masked.row(i).value(a), rel.row(i).value(a));
        }
      }
    }
  }
}

TEST(DatagenTest, MaskedAttributesRoughlyUniform) {
  BayesNet bn = TestNet();
  Rng rng(5);
  Relation rel = bn.SampleRelation(5000, &rng);
  Relation masked = MaskRelation(rel, 1, &rng);
  std::vector<int> counts(5, 0);
  for (size_t i = 0; i < masked.num_rows(); ++i) {
    for (AttrId a = 0; a < 5; ++a) {
      if (masked.row(i).value(a) == kMissingValue) ++counts[a];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);  // 5000/5 per attribute
  }
}

TEST(DatagenTest, GenerateDatasetSplitSizes) {
  BayesNet bn = TestNet();
  Rng rng(7);
  DatasetOptions opts;
  opts.train_size = 900;
  opts.test_fraction = 0.1;
  opts.num_missing = 2;
  auto ds = GenerateDataset(bn, opts, &rng);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->train.num_rows(), 900u);
  EXPECT_EQ(ds->test_masked.num_rows(), 100u);
  EXPECT_EQ(ds->test_original.num_rows(), 100u);
  // Training data is complete; test data has exactly 2 missing per row.
  EXPECT_EQ(ds->train.CompleteRowIndices().size(), 900u);
  for (size_t i = 0; i < ds->test_masked.num_rows(); ++i) {
    EXPECT_EQ(ds->test_masked.row(i).NumMissing(), 2u);
    EXPECT_TRUE(ds->test_original.row(i).IsComplete());
    EXPECT_TRUE(ds->test_masked.row(i).MatchedBy(ds->test_original.row(i)));
  }
}

TEST(DatagenTest, GenerateDatasetValidatesOptions) {
  BayesNet bn = TestNet();
  Rng rng(9);
  DatasetOptions opts;
  opts.num_missing = 0;
  EXPECT_FALSE(GenerateDataset(bn, opts, &rng).ok());
  opts.num_missing = 5;  // == num_attrs
  EXPECT_FALSE(GenerateDataset(bn, opts, &rng).ok());
  opts.num_missing = 1;
  opts.test_fraction = 1.5;
  EXPECT_FALSE(GenerateDataset(bn, opts, &rng).ok());
  opts.test_fraction = 0.1;
  opts.train_size = 0;
  EXPECT_FALSE(GenerateDataset(bn, opts, &rng).ok());
}

TEST(DatagenTest, DeterministicGivenSeed) {
  BayesNet bn = TestNet();
  DatasetOptions opts;
  opts.train_size = 500;
  Rng r1(42);
  Rng r2(42);
  auto d1 = GenerateDataset(bn, opts, &r1);
  auto d2 = GenerateDataset(bn, opts, &r2);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  ASSERT_EQ(d1->train.num_rows(), d2->train.num_rows());
  for (size_t i = 0; i < d1->train.num_rows(); ++i) {
    EXPECT_EQ(d1->train.row(i), d2->train.row(i));
  }
  for (size_t i = 0; i < d1->test_masked.num_rows(); ++i) {
    EXPECT_EQ(d1->test_masked.row(i), d2->test_masked.row(i));
  }
}

TEST(DatagenTest, TrainDistributionTracksNetwork) {
  // Empirical frequency of the source variable matches its CPT closely.
  BayesNet bn = TestNet(11);
  Rng rng(13);
  DatasetOptions opts;
  opts.train_size = 20000;
  auto ds = GenerateDataset(bn, opts, &rng);
  ASSERT_TRUE(ds.ok());
  double p0 = bn.cpt(0)[0];  // P(A0 = 0), A0 is a root
  size_t count0 = 0;
  for (const Tuple& t : ds->train.rows()) count0 += (t.value(0) == 0);
  EXPECT_NEAR(count0 / static_cast<double>(ds->train.num_rows()), p0, 0.02);
}

}  // namespace
}  // namespace mrsl
