// Tests for the persistent inference engine: bit-equivalence with the
// legacy per-call path, thread-count-independent determinism, context
// reuse across successive batches, and the end-to-end batched APIs.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "core/infer_single.h"
#include "core/learner.h"
#include "core/tuple_dag.h"
#include "core/workload.h"

namespace mrsl {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(818);
    bn_ = BayesNet::RandomInstance(Topology::Crown(5, 2), &rng);
    Relation train = bn_.SampleRelation(12000, &rng);
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(train, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();

    Rng wl_rng(819);
    for (int i = 0; i < 50; ++i) {
      Tuple t = bn_.ForwardSample(&wl_rng);
      size_t k = 1 + wl_rng.UniformInt(3);
      for (size_t j = 0; j < k; ++j) {
        t.set_value(static_cast<AttrId>(wl_rng.UniformInt(5)),
                    kMissingValue);
      }
      workload_.push_back(std::move(t));
    }
  }

  WorkloadOptions WOpts() {
    WorkloadOptions o;
    o.gibbs.samples = 300;
    o.gibbs.burn_in = 40;
    o.gibbs.seed = 77;
    return o;
  }

  BayesNet bn_;
  MrslModel model_;
  std::vector<Tuple> workload_;
};

// The determinism contract: InferBatch must reproduce, bit for bit, the
// pre-refactor reference — each DAG component run through the sequential
// RunWorkload with its WorkloadComponentSeed, stitched back by node.
TEST_F(EngineTest, BatchMatchesPerComponentSequentialReference) {
  for (SamplingMode mode :
       {SamplingMode::kTupleAtATime, SamplingMode::kTupleDag,
        SamplingMode::kIndependentProduct}) {
    TupleDag dag(workload_);
    auto components = dag.Components();
    std::vector<const JointDist*> by_node(dag.num_nodes(), nullptr);
    std::vector<std::vector<JointDist>> sub_results(components.size());
    for (size_t c = 0; c < components.size(); ++c) {
      std::vector<Tuple> sub;
      for (uint32_t node : components[c]) sub.push_back(dag.node(node));
      WorkloadOptions opts = WOpts();
      opts.gibbs.seed = WorkloadComponentSeed(opts.gibbs.seed, sub);
      auto result = RunWorkload(model_, sub, mode, opts);
      ASSERT_TRUE(result.ok());
      sub_results[c] = std::move(result).value();
      for (size_t i = 0; i < components[c].size(); ++i) {
        by_node[components[c][i]] = &sub_results[c][i];
      }
    }

    Engine engine(&model_);
    auto batch = engine.InferBatch(workload_, mode, WOpts());
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), workload_.size());
    for (size_t pos = 0; pos < workload_.size(); ++pos) {
      EXPECT_EQ((*batch)[pos].probs(),
                by_node[dag.workload_to_node()[pos]]->probs())
          << "mode=" << SamplingModeName(mode) << " pos=" << pos;
    }
  }
}

TEST_F(EngineTest, DeterministicAcrossThreadCounts) {
  std::vector<std::vector<JointDist>> results;
  for (size_t threads : {1u, 2u, 8u}) {
    EngineOptions eo;
    eo.num_threads = threads;
    Engine engine(&model_, eo);
    EXPECT_EQ(engine.num_threads(), threads);
    auto dists =
        engine.InferBatch(workload_, SamplingMode::kTupleDag, WOpts());
    ASSERT_TRUE(dists.ok());
    results.push_back(std::move(dists).value());
  }
  for (size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[r].size(), results[0].size());
    for (size_t i = 0; i < results[0].size(); ++i) {
      EXPECT_EQ(results[r][i].probs(), results[0][i].probs())
          << "thread config " << r << " diverged at " << i;
    }
  }
}

// Context reuse: successive batches on one engine reuse pooled contexts
// with warm CPD caches, and warm caches do not change results. The
// deterministic invariant is the cap — with at most N concurrent
// executors, the engine never constructs more than N contexts no matter
// how many batches run. (Asserting that batch 2 adds no contexts over
// batch 1's pool races on batch 1's scheduling-dependent high-water
// mark and flaked; the cap does not.)
TEST_F(EngineTest, ContextReuseAcrossSuccessiveBatches) {
  EngineOptions eo;
  eo.num_threads = 2;
  Engine engine(&model_, eo);
  auto first = engine.InferBatch(workload_, SamplingMode::kTupleDag,
                                 WOpts());
  ASSERT_TRUE(first.ok());
  EngineStats after_first = engine.stats();
  EXPECT_GT(engine.context_pool_size(), 0u);
  EXPECT_EQ(after_first.batches, 1u);
  EXPECT_EQ(after_first.tuples, workload_.size());

  auto second = engine.InferBatch(workload_, SamplingMode::kTupleDag,
                                  WOpts());
  ASSERT_TRUE(second.ok());
  auto third = engine.InferBatch(workload_, SamplingMode::kTupleDag,
                                 WOpts());
  ASSERT_TRUE(third.ok());
  EngineStats after_third = engine.stats();

  // Three batches, many components each — still at most num_threads
  // contexts ever constructed: the later batches ran on reused ones.
  EXPECT_LE(after_third.contexts_created, 2u);
  EXPECT_LE(engine.context_pool_size(), 2u);
  // The repeat batches were served from the warm caches...
  EXPECT_GT(after_third.cache_hits, after_first.cache_hits);
  EXPECT_LT((after_third.cpd_evaluations - after_first.cpd_evaluations) / 2,
            after_first.cpd_evaluations);
  // ...and warm caches are invisible in the results.
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].probs(), (*second)[i].probs()) << "i=" << i;
    EXPECT_EQ((*first)[i].probs(), (*third)[i].probs()) << "i=" << i;
  }
}

TEST_F(EngineTest, SingleTupleInferMatchesSingletonBatch) {
  Engine engine(&model_);
  auto single = engine.Infer(workload_[0], WOpts());
  auto batch = engine.InferBatch({workload_[0]},
                                 SamplingMode::kTupleAtATime, WOpts());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(single->probs(), (*batch)[0].probs());
}

TEST_F(EngineTest, AllAtATimeRunsOnOneContext) {
  // Small workload: the single global chain is slow to hit rare evidence.
  std::vector<Tuple> small(workload_.begin(), workload_.begin() + 4);
  WorkloadOptions opts = WOpts();
  opts.gibbs.samples = 50;
  opts.max_total_cycles = 200000;
  Engine engine(&model_);
  auto a = engine.InferBatch(small, SamplingMode::kAllAtATime, opts);
  auto b = engine.InferBatch(small, SamplingMode::kAllAtATime, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].probs(), (*b)[i].probs());
  }
}

TEST_F(EngineTest, InferAttributeMatchesFreeFunction) {
  Engine engine(&model_);
  VotingOptions voting;
  for (size_t i = 0; i < 10; ++i) {
    const Tuple& t = workload_[i];
    AttrId attr = t.MissingAttrs()[0];
    auto pooled = engine.InferAttribute(t, attr, voting);
    auto free_fn = InferSingleAttribute(model_, t, attr, voting);
    ASSERT_TRUE(pooled.ok());
    ASSERT_TRUE(free_fn.ok());
    EXPECT_EQ(pooled->probs(), free_fn->probs()) << "i=" << i;
  }
  EXPECT_FALSE(
      engine.InferAttribute(workload_[0], model_.num_attrs(), voting).ok());
}

TEST_F(EngineTest, DeriveBatchCoversIncompleteRowsInOrder) {
  Relation rel(model_.schema());
  Rng rng(820);
  for (int i = 0; i < 30; ++i) {
    Tuple t = bn_.ForwardSample(&rng);
    if (i % 3 == 0) {
      t.set_value(static_cast<AttrId>(rng.UniformInt(5)), kMissingValue);
    }
    ASSERT_TRUE(rel.Append(std::move(t)).ok());
  }
  Engine engine(&model_);
  auto dists =
      engine.DeriveBatch(rel, SamplingMode::kTupleDag, WOpts());
  ASSERT_TRUE(dists.ok());
  const auto& incomplete = rel.IncompleteRowIndices();
  ASSERT_EQ(dists->size(), incomplete.size());
  for (size_t i = 0; i < incomplete.size(); ++i) {
    EXPECT_EQ((*dists)[i].vars(),
              rel.row(incomplete[i]).MissingAttrs());
    EXPECT_NEAR((*dists)[i].Sum(), 1.0, 1e-9);
  }
}

TEST_F(EngineTest, EmptyBatchAndValidation) {
  Engine engine(&model_);
  WorkloadStats stats;
  auto empty = engine.InferBatch({}, SamplingMode::kTupleDag, WOpts(),
                                 &stats);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(stats.points_sampled, 0u);

  // A complete tuple is rejected, whichever component it lands in.
  Rng rng(821);
  std::vector<Tuple> bad = workload_;
  bad.push_back(bn_.ForwardSample(&rng));
  auto result = engine.InferBatch(bad, SamplingMode::kTupleDag, WOpts());
  EXPECT_FALSE(result.ok());
}

TEST(EngineOwnershipTest, OwningEngineOutlivesSourceModel) {
  Rng rng(822);
  BayesNet bn = BayesNet::RandomInstance(Topology::Chain(4, 2), &rng);
  Relation train = bn.SampleRelation(4000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.01;
  auto model = LearnModel(train, lo);
  ASSERT_TRUE(model.ok());

  Tuple t = bn.ForwardSample(&rng);
  t.set_value(1, kMissingValue);

  Engine engine(std::move(model).value());  // takes ownership
  WorkloadOptions opts;
  opts.gibbs.samples = 100;
  opts.gibbs.burn_in = 20;
  auto dist = engine.Infer(t, opts);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->Sum(), 1.0, 1e-9);
  EXPECT_GT(engine.stats().tuples, 0u);
}

}  // namespace
}  // namespace mrsl
