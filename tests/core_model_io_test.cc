// Tests for MRSL model serialization: round-trips preserve inference
// behaviour bit-for-bit.

#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/infer_single.h"
#include "util/string_util.h"
#include "core/learner.h"
#include "paper_example.h"

namespace mrsl {
namespace {

MrslModel LearnFig1() {
  Relation rel = LoadFig1();
  LearnOptions o;
  o.support_threshold = 0.05;
  auto model = LearnModel(rel, o);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(ModelIoTest, RoundTripPreservesStructure) {
  MrslModel model = LearnFig1();
  auto again = ModelFromText(ModelToText(model));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->num_attrs(), model.num_attrs());
  EXPECT_EQ(again->TotalMetaRules(), model.TotalMetaRules());
  for (AttrId a = 0; a < model.num_attrs(); ++a) {
    ASSERT_EQ(again->mrsl(a).num_rules(), model.mrsl(a).num_rules());
    EXPECT_EQ(again->mrsl(a).root() >= 0, model.mrsl(a).root() >= 0);
    // Schema labels preserved.
    ASSERT_EQ(again->schema().attr(a).cardinality(),
              model.schema().attr(a).cardinality());
    for (size_t v = 0; v < model.schema().attr(a).cardinality(); ++v) {
      EXPECT_EQ(again->schema().attr(a).label(static_cast<ValueId>(v)),
                model.schema().attr(a).label(static_cast<ValueId>(v)));
    }
  }
}

TEST(ModelIoTest, RoundTripPreservesInference) {
  MrslModel model = LearnFig1();
  auto again = ModelFromText(ModelToText(model));
  ASSERT_TRUE(again.ok());

  Relation rel = LoadFig1();
  for (const Tuple& base : rel.rows()) {
    if (!base.IsComplete()) continue;
    for (AttrId a = 0; a < 4; ++a) {
      Tuple t = base;
      t.set_value(a, kMissingValue);
      for (auto choice : {VoterChoice::kAll, VoterChoice::kBest}) {
        auto c1 = InferSingleAttribute(model, t, a,
                                       {choice, VotingScheme::kWeighted});
        auto c2 = InferSingleAttribute(*again, t, a,
                                       {choice, VotingScheme::kWeighted});
        ASSERT_TRUE(c1.ok());
        ASSERT_TRUE(c2.ok());
        // %.17g printing preserves doubles exactly.
        EXPECT_EQ(c1->probs(), c2->probs());
      }
    }
  }
}

TEST(ModelIoTest, EscapedLabelsSurvive) {
  auto rel = Relation::FromCsv(
      "a,b\n"
      "\"has space\",x\n"
      "\"has%percent\",y\n");
  ASSERT_TRUE(rel.ok());
  LearnOptions o;
  o.support_threshold = 0.01;
  auto model = LearnModel(*rel, o);
  ASSERT_TRUE(model.ok());
  auto again = ModelFromText(ModelToText(*model));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->schema().attr(0).label(0), "has space");
  EXPECT_EQ(again->schema().attr(0).label(1), "has%percent");
}

TEST(ModelIoTest, FileRoundTrip) {
  MrslModel model = LearnFig1();
  std::string path = ::testing::TempDir() + "/mrsl_model_test.txt";
  ASSERT_TRUE(SaveModelFile(model, path).ok());
  auto loaded = LoadModelFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalMetaRules(), model.TotalMetaRules());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsCorruptedInput) {
  EXPECT_FALSE(ModelFromText("").ok());
  EXPECT_FALSE(ModelFromText("not-a-model\n").ok());
  EXPECT_FALSE(ModelFromText("mrsl-model v1\nattrs x\n").ok());

  // Truncated document: header claims more lattices than present.
  MrslModel model = LearnFig1();
  std::string text = ModelToText(model);
  std::string truncated = text.substr(0, text.size() / 2);
  EXPECT_FALSE(ModelFromText(truncated).ok());
}

TEST(ModelIoTest, RejectsCpdArityMismatch) {
  std::string bad =
      "mrsl-model v1\n"
      "attrs 1\n"
      "attr a x y\n"
      "lattice 0 1\n"
      "rule 1.0 5 body cpd 0.5 0.25 0.25\n";  // 3 probs, card 2
  EXPECT_FALSE(ModelFromText(bad).ok());
}

// Robustness sweep: random single-line deletions and character
// mutations of a valid document must either parse to a usable model or
// fail cleanly with a Status — never crash.
class ModelIoFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelIoFuzzTest, MutationsFailCleanlyOrParse) {
  MrslModel model = LearnFig1();
  std::string text = ModelToText(model);
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = text;
    switch (rng.UniformInt(3)) {
      case 0: {  // delete a random line
        auto lines = Split(mutated, '\n');
        lines.erase(lines.begin() +
                    static_cast<long>(rng.UniformInt(lines.size())));
        mutated = Join(lines, "\n");
        break;
      }
      case 1: {  // flip a random character
        if (!mutated.empty()) {
          size_t i = rng.UniformInt(mutated.size());
          mutated[i] = static_cast<char>('!' + rng.UniformInt(90));
        }
        break;
      }
      default: {  // truncate
        mutated = mutated.substr(0, rng.UniformInt(mutated.size() + 1));
        break;
      }
    }
    auto parsed = ModelFromText(mutated);
    if (parsed.ok()) {
      // Usable: inference must still return valid distributions.
      Tuple t(4);
      auto cpd = InferSingleAttribute(*parsed, t, 0, VotingOptions());
      if (cpd.ok()) {
        double sum = 0.0;
        for (double p : cpd->probs()) sum += p;
        EXPECT_NEAR(sum, 1.0, 1e-6);
      }
    } else {
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelIoFuzzTest,
                         ::testing::Values(71, 72, 73, 74));

}  // namespace
}  // namespace mrsl
