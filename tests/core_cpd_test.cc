// Tests for Cpd: the paper's smoothing rules and the two voting schemes,
// plus parameterized property sweeps.

#include "core/cpd.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace mrsl {
namespace {

constexpr double kMinProb = 1e-5;

TEST(CpdTest, UniformConstructor) {
  Cpd c(4);
  EXPECT_EQ(c.card(), 4u);
  for (ValueId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(c.prob(v), 0.25);
}

// The paper's worked meta-rule: P(age | edu=HS) = [0.15, 0.70, 0.15] from
// confidences 0.06/0.41, 0.29/0.41, 0.06/0.41 (already summing to 1).
TEST(CpdTest, FromConfidencesMatchesPaperExample) {
  Cpd c = Cpd::FromConfidences(
      3, {{0, 0.06 / 0.41}, {1, 0.29 / 0.41}, {2, 0.06 / 0.41}}, kMinProb);
  EXPECT_NEAR(c.prob(0), 0.146, 0.002);
  EXPECT_NEAR(c.prob(1), 0.707, 0.002);
  EXPECT_NEAR(c.prob(2), 0.146, 0.002);
}

TEST(CpdTest, LeftoverMassSpreadEqually) {
  // Only value 0 has a rule (conf 0.5); leftover 0.5 spread over 2 values.
  Cpd c = Cpd::FromConfidences(2, {{0, 0.5}}, kMinProb);
  EXPECT_NEAR(c.prob(0), 0.75, 1e-9);
  EXPECT_NEAR(c.prob(1), 0.25, 1e-9);
}

TEST(CpdTest, NoConfidencesYieldsUniform) {
  Cpd c = Cpd::FromConfidences(4, {}, kMinProb);
  for (ValueId v = 0; v < 4; ++v) EXPECT_NEAR(c.prob(v), 0.25, 1e-9);
}

TEST(CpdTest, AllMassOnOneValueStillPositiveEverywhere) {
  Cpd c = Cpd::FromConfidences(3, {{1, 1.0}}, kMinProb);
  EXPECT_GT(c.prob(0), 0.0);
  EXPECT_GT(c.prob(2), 0.0);
  EXPECT_GT(c.prob(1), 0.99);
}

TEST(CpdTest, ArgMax) {
  Cpd c(std::vector<double>{0.2, 0.5, 0.3});
  EXPECT_EQ(c.ArgMax(), 1);
}

TEST(CpdTest, SampleFollowsDistribution) {
  Cpd c(std::vector<double>{0.1, 0.6, 0.3});
  Rng rng(99);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[c.Sample(&rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.6, 0.01);
}

// Paper worked example (tuple t1): averaging all five Fig 2 meta-rules
// yields <0.25, 0.51, 0.24>.
TEST(CpdTest, AverageMatchesPaperExample) {
  Cpd m1(std::vector<double>{0.31, 0.38, 0.32});  // P(age)
  Cpd m2(std::vector<double>{0.15, 0.70, 0.15});  // P(age|edu=HS)
  Cpd m3(std::vector<double>{0.31, 0.41, 0.28});  // P(age|inc=50K)
  Cpd m4(std::vector<double>{0.31, 0.38, 0.32});  // P(age|nw=500K)
  Cpd m5(std::vector<double>{0.15, 0.70, 0.15});  // P(age|edu,inc)
  Cpd avg = Cpd::Average({&m1, &m2, &m3, &m4, &m5});
  EXPECT_NEAR(avg.prob(0), 0.25, 0.005);
  EXPECT_NEAR(avg.prob(1), 0.51, 0.005);
  EXPECT_NEAR(avg.prob(2), 0.24, 0.005);
}

TEST(CpdTest, WeightedAverageUsesWeights) {
  Cpd a(std::vector<double>{1.0, 0.0});
  Cpd b(std::vector<double>{0.0, 1.0});
  Cpd w = Cpd::WeightedAverage({&a, &b}, {3.0, 1.0});
  EXPECT_NEAR(w.prob(0), 0.75, 1e-12);
  EXPECT_NEAR(w.prob(1), 0.25, 1e-12);
}

TEST(CpdTest, WeightedAverageEqualWeightsEqualsAverage) {
  Cpd a(std::vector<double>{0.2, 0.8});
  Cpd b(std::vector<double>{0.6, 0.4});
  Cpd avg = Cpd::Average({&a, &b});
  Cpd w = Cpd::WeightedAverage({&a, &b}, {5.0, 5.0});
  EXPECT_NEAR(avg.prob(0), w.prob(0), 1e-12);
  EXPECT_NEAR(avg.prob(1), w.prob(1), 1e-12);
}

// ---- Property sweep: smoothing invariants over random confidences ----

struct SmoothCase {
  uint64_t seed;
  size_t card;
};

class CpdSmoothingProperty : public ::testing::TestWithParam<SmoothCase> {};

TEST_P(CpdSmoothingProperty, SmoothedCpdIsAPositiveDistribution) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 100; ++trial) {
    // Random subset of values with random confidences summing <= 1.
    std::vector<std::pair<ValueId, double>> confs;
    double budget = 1.0;
    for (size_t v = 0; v < param.card; ++v) {
      if (rng.Bernoulli(0.5)) {
        double c = rng.NextDouble() * budget;
        confs.emplace_back(static_cast<ValueId>(v), c);
        budget -= c;
      }
    }
    Cpd cpd = Cpd::FromConfidences(param.card, confs, kMinProb);
    double sum =
        std::accumulate(cpd.probs().begin(), cpd.probs().end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double p : cpd.probs()) {
      EXPECT_GT(p, 0.0);
    }
    // Order preservation: higher confidence never maps to lower
    // probability (the leftover share is added equally to all values).
    for (const auto& [v1, c1] : confs) {
      for (const auto& [v2, c2] : confs) {
        if (c1 > c2) {
          EXPECT_GE(cpd.prob(v1) + 1e-12, cpd.prob(v2));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cards, CpdSmoothingProperty,
    ::testing::Values(SmoothCase{1, 2}, SmoothCase{2, 3}, SmoothCase{3, 5},
                      SmoothCase{4, 8}, SmoothCase{5, 10}));

}  // namespace
}  // namespace mrsl
