// Tests for Attribute / Schema.

#include "relational/schema.h"

#include <gtest/gtest.h>

namespace mrsl {
namespace {

TEST(AttributeTest, FixedLabels) {
  Attribute a("age", {"20", "30", "40"});
  EXPECT_EQ(a.name(), "age");
  EXPECT_EQ(a.cardinality(), 3u);
  EXPECT_EQ(a.label(0), "20");
  EXPECT_EQ(a.label(2), "40");
  EXPECT_EQ(a.Find("30"), 1);
  EXPECT_EQ(a.Find("50"), kMissingValue);
}

TEST(AttributeTest, FindOrAddGrowsDomain) {
  Attribute a("edu");
  EXPECT_EQ(a.cardinality(), 0u);
  EXPECT_EQ(a.FindOrAdd("HS"), 0);
  EXPECT_EQ(a.FindOrAdd("BS"), 1);
  EXPECT_EQ(a.FindOrAdd("HS"), 0);  // existing label reused
  EXPECT_EQ(a.cardinality(), 2u);
}

TEST(SchemaTest, CreateAndLookup) {
  auto s = Schema::Create({Attribute("a", {"x", "y"}),
                           Attribute("b", {"1", "2", "3"})});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attrs(), 2u);
  AttrId id = 99;
  EXPECT_TRUE(s->FindAttr("b", &id));
  EXPECT_EQ(id, 1u);
  EXPECT_FALSE(s->FindAttr("zzz", &id));
}

TEST(SchemaTest, DuplicateNamesRejected) {
  auto s = Schema::Create({Attribute("a"), Attribute("a")});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, TooManyAttributesRejected) {
  std::vector<Attribute> attrs;
  for (int i = 0; i <= 64; ++i) {
    attrs.emplace_back("a" + std::to_string(i));
  }
  auto s = Schema::Create(std::move(attrs));
  ASSERT_FALSE(s.ok());
}

TEST(SchemaTest, DomainSizeIsProductOfCards) {
  auto s = Schema::Create({Attribute("a", {"x", "y"}),
                           Attribute("b", {"1", "2", "3"}),
                           Attribute("c", {"u", "v"})});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->DomainSize(), 12u);
}

TEST(SchemaTest, DomainSizeZeroWithEmptyDomain) {
  auto s = Schema::Create({Attribute("a", {"x"}), Attribute("b")});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->DomainSize(), 0u);
}

TEST(SchemaTest, FullMaskCoversAllAttrs) {
  auto s = Schema::Create({Attribute("a"), Attribute("b"), Attribute("c")});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->FullMask(), 0b111u);
}

TEST(SchemaTest, EmptySchema) {
  auto s = Schema::Create({});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attrs(), 0u);
  EXPECT_EQ(s->FullMask(), 0u);
  EXPECT_EQ(s->DomainSize(), 1u);
}

}  // namespace
}  // namespace mrsl
