// Tests for query processing over BID databases: extensional operators
// checked against exact possible-world enumeration and the Monte-Carlo
// oracle.

#include "pdb/query.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/rng.h"

namespace mrsl {
namespace {

Schema TwoAttrSchema() {
  auto s = Schema::Create(
      {Attribute("inc", {"50K", "100K"}), Attribute("nw", {"100K", "500K"})});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

// A 3-block database used across the tests.
ProbDatabase SmallDb() {
  ProbDatabase db(TwoAttrSchema());
  Block b1;  // certain
  b1.alternatives.push_back({Tuple({1, 1}), 1.0});
  EXPECT_TRUE(db.AddBlock(b1).ok());
  Block b2;
  b2.alternatives.push_back({Tuple({0, 0}), 0.3});
  b2.alternatives.push_back({Tuple({1, 0}), 0.7});
  EXPECT_TRUE(db.AddBlock(b2).ok());
  Block b3;
  b3.alternatives.push_back({Tuple({0, 1}), 0.5});
  b3.alternatives.push_back({Tuple({1, 1}), 0.4});  // mass 0.9
  EXPECT_TRUE(db.AddBlock(b3).ok());
  return db;
}

TEST(PredicateTest, EvalAtoms) {
  Predicate p = Predicate::Eq(0, 1);
  EXPECT_TRUE(p.Eval(Tuple({1, 0})));
  EXPECT_FALSE(p.Eval(Tuple({0, 0})));
  Predicate q = Predicate::Eq(0, 1).And(Predicate::Ne(1, 0));
  EXPECT_TRUE(q.Eval(Tuple({1, 1})));
  EXPECT_FALSE(q.Eval(Tuple({1, 0})));
  Predicate always;
  EXPECT_TRUE(always.Eval(Tuple({0, 0})));
}

TEST(PredicateTest, EvalPartialThreeValued) {
  using Tri = Predicate::Tri;
  Predicate p = Predicate::Eq(0, 1).And(Predicate::Ne(1, 0));
  // Fully decided.
  EXPECT_EQ(p.EvalPartial(Tuple({1, 1})), Tri::kTrue);
  EXPECT_EQ(p.EvalPartial(Tuple({0, 1})), Tri::kFalse);
  // A failing observed atom decides false even with other cells missing.
  EXPECT_EQ(p.EvalPartial(Tuple({0, kMissingValue})), Tri::kFalse);
  EXPECT_EQ(p.EvalPartial(Tuple({1, 0})), Tri::kFalse);
  // Missing cells that could flip the outcome -> unknown.
  EXPECT_EQ(p.EvalPartial(Tuple({kMissingValue, 1})), Tri::kUnknown);
  EXPECT_EQ(p.EvalPartial(Tuple({1, kMissingValue})), Tri::kUnknown);
  // The always-true predicate is decided on anything.
  EXPECT_EQ(Predicate().EvalPartial(Tuple(2)), Tri::kTrue);
}

TEST(PredicateTest, EvalPartialConsistentWithEval) {
  // On complete tuples, EvalPartial agrees with Eval for random atoms.
  Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    Predicate p;
    for (int k = 0; k < 3; ++k) {
      AttrId a = static_cast<AttrId>(rng.UniformInt(3));
      ValueId v = static_cast<ValueId>(rng.UniformInt(2));
      p = p.And(rng.Bernoulli(0.5) ? Predicate::Eq(a, v)
                                   : Predicate::Ne(a, v));
    }
    Tuple t({static_cast<ValueId>(rng.UniformInt(2)),
             static_cast<ValueId>(rng.UniformInt(2)),
             static_cast<ValueId>(rng.UniformInt(2))});
    EXPECT_EQ(p.EvalPartial(t) == Predicate::Tri::kTrue, p.Eval(t));
  }
}

TEST(PredicateTest, AttrsTouched) {
  Predicate p = Predicate::Eq(0, 1).And(Predicate::Ne(3, 0));
  EXPECT_EQ(p.AttrsTouched(), 0b1001u);
  EXPECT_EQ(Predicate().AttrsTouched(), 0u);
}

TEST(PredicateTest, ToString) {
  Schema s = TwoAttrSchema();
  Predicate p = Predicate::Eq(0, 1).And(Predicate::Ne(1, 0));
  EXPECT_EQ(p.ToString(s), "inc=100K AND nw!=100K");
  EXPECT_EQ(Predicate().ToString(s), "TRUE");
}

TEST(QueryTest, SelectKeepsMatchingAlternatives) {
  ProbDatabase db = SmallDb();
  ProbDatabase sel = Select(db, Predicate::Eq(0, 1));  // inc=100K
  // Block 1 survives fully, block 2 keeps only its second alternative,
  // block 3 keeps its second alternative.
  EXPECT_EQ(sel.num_blocks(), 3u);
  EXPECT_EQ(sel.block(1).alternatives.size(), 1u);
  EXPECT_DOUBLE_EQ(sel.block(1).alternatives[0].prob, 0.7);
}

TEST(QueryTest, ExpectedCountMatchesWorldEnumeration) {
  ProbDatabase db = SmallDb();
  Predicate pred = Predicate::Eq(1, 1);  // nw=500K
  double expected = ExpectedCount(db, pred);

  double brute = 0.0;
  ASSERT_TRUE(db.ForEachWorld(1000,
                              [&](const std::vector<const Tuple*>& world,
                                  double p) {
                                size_t count = 0;
                                for (const Tuple* t : world) {
                                  if (pred.Eval(*t)) ++count;
                                }
                                brute += p * static_cast<double>(count);
                              })
                  .ok());
  EXPECT_NEAR(expected, brute, 1e-12);
}

TEST(QueryTest, ProbExistsMatchesWorldEnumeration) {
  ProbDatabase db = SmallDb();
  for (const Predicate& pred :
       {Predicate::Eq(0, 0), Predicate::Eq(1, 1),
        Predicate::Eq(0, 1).And(Predicate::Eq(1, 0))}) {
    double exists = ProbExists(db, pred);
    double brute = 0.0;
    ASSERT_TRUE(db.ForEachWorld(1000,
                                [&](const std::vector<const Tuple*>& world,
                                    double p) {
                                  for (const Tuple* t : world) {
                                    if (pred.Eval(*t)) {
                                      brute += p;
                                      return;
                                    }
                                  }
                                })
                    .ok());
    EXPECT_NEAR(exists, brute, 1e-12);
  }
}

TEST(QueryTest, CountDistributionMatchesWorldEnumeration) {
  ProbDatabase db = SmallDb();
  Predicate pred = Predicate::Eq(1, 1);
  auto dist = CountDistribution(db, pred);

  std::vector<double> brute(db.num_blocks() + 1, 0.0);
  ASSERT_TRUE(db.ForEachWorld(1000,
                              [&](const std::vector<const Tuple*>& world,
                                  double p) {
                                size_t count = 0;
                                for (const Tuple* t : world) {
                                  if (pred.Eval(*t)) ++count;
                                }
                                brute[count] += p;
                              })
                  .ok());
  ASSERT_EQ(dist.size(), brute.size());
  for (size_t k = 0; k < dist.size(); ++k) {
    EXPECT_NEAR(dist[k], brute[k], 1e-12) << "count=" << k;
  }
  // It is a distribution.
  double sum = 0.0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(QueryTest, CountDistributionMatchesMonteCarlo) {
  ProbDatabase db = SmallDb();
  Predicate pred = Predicate::Eq(0, 1);
  auto exact = CountDistribution(db, pred);
  Rng rng(4711);
  auto mc = MonteCarloCountDistribution(db, pred, 200000, &rng);
  ASSERT_EQ(exact.size(), mc.size());
  for (size_t k = 0; k < exact.size(); ++k) {
    EXPECT_NEAR(exact[k], mc[k], 0.01) << "count=" << k;
  }
}

TEST(QueryTest, ProjectDistinctDisjointWithinBlock) {
  // One block with two alternatives projecting to the same value: their
  // probabilities add (mutually exclusive).
  ProbDatabase db(TwoAttrSchema());
  Block b;
  b.alternatives.push_back({Tuple({0, 0}), 0.3});
  b.alternatives.push_back({Tuple({0, 1}), 0.4});
  ASSERT_TRUE(db.AddBlock(b).ok());
  auto proj = ProjectDistinct(db, {0});
  ASSERT_EQ(proj.size(), 1u);
  EXPECT_NEAR(proj[0].prob, 0.7, 1e-12);
}

TEST(QueryTest, ProjectDistinctIndependentAcrossBlocks) {
  // Two blocks each projecting to inc=50K with prob 0.5:
  // P(appears) = 1 - 0.5 * 0.5 = 0.75.
  ProbDatabase db(TwoAttrSchema());
  for (int i = 0; i < 2; ++i) {
    Block b;
    b.alternatives.push_back({Tuple({0, 0}), 0.5});
    b.alternatives.push_back({Tuple({1, 0}), 0.5});
    ASSERT_TRUE(db.AddBlock(b).ok());
  }
  auto proj = ProjectDistinct(db, {0});
  std::map<ValueId, double> by_value;
  for (const auto& pt : proj) by_value[pt.tuple.value(0)] = pt.prob;
  EXPECT_NEAR(by_value[0], 0.75, 1e-12);
  EXPECT_NEAR(by_value[1], 0.75, 1e-12);
}

TEST(QueryTest, ProjectDistinctMatchesWorldEnumeration) {
  ProbDatabase db = SmallDb();
  auto proj = ProjectDistinct(db, {1});  // project onto nw
  for (const auto& pt : proj) {
    ValueId v = pt.tuple.value(0);
    double brute = 0.0;
    ASSERT_TRUE(db.ForEachWorld(1000,
                                [&](const std::vector<const Tuple*>& world,
                                    double p) {
                                  for (const Tuple* t : world) {
                                    if (t->value(1) == v) {
                                      brute += p;
                                      return;
                                    }
                                  }
                                })
                    .ok());
    EXPECT_NEAR(pt.prob, brute, 1e-12);
  }
}

TEST(QueryTest, EquiJoinProbabilitiesMultiply) {
  ProbDatabase left(TwoAttrSchema());
  Block lb;
  lb.alternatives.push_back({Tuple({0, 0}), 0.4});
  lb.alternatives.push_back({Tuple({1, 1}), 0.6});
  ASSERT_TRUE(left.AddBlock(lb).ok());

  ProbDatabase right(TwoAttrSchema());
  Block rb;
  rb.alternatives.push_back({Tuple({0, 1}), 0.5});
  ASSERT_TRUE(right.AddBlock(rb).ok());

  // Join on inc == inc: only (0,0) x (0,1) matches.
  auto joined = EquiJoin(left, right, 0, 0);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->tuples.size(), 1u);
  EXPECT_NEAR(joined->tuples[0].prob, 0.4 * 0.5, 1e-12);
  EXPECT_EQ(joined->schema.num_attrs(), 4u);
  EXPECT_EQ(joined->tuples[0].tuple.num_attrs(), 4u);
  // Right-hand attributes are renamed.
  AttrId id = 0;
  EXPECT_TRUE(joined->schema.FindAttr("inc_r", &id));
}

TEST(QueryTest, EquiJoinValidatesAttrs) {
  ProbDatabase db = SmallDb();
  EXPECT_FALSE(EquiJoin(db, db, 7, 0).ok());
}

TEST(QueryTest, SelectThenCountComposes) {
  ProbDatabase db = SmallDb();
  Predicate inc100 = Predicate::Eq(0, 1);
  Predicate nw500 = Predicate::Eq(1, 1);
  // COUNT over select(inc=100K) with pred nw=500K equals COUNT with the
  // conjunction on the original database.
  double direct = ExpectedCount(db, inc100.And(nw500));
  double composed = ExpectedCount(Select(db, inc100), nw500);
  EXPECT_NEAR(direct, composed, 1e-12);
}

}  // namespace
}  // namespace mrsl
