// Tests for lazy, query-targeted derivation: correctness against the
// eager pipeline and the short-circuit/materialization accounting.

#include "pdb/lazy.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "bn/bayes_net.h"
#include "core/learner.h"
#include "core/workload.h"
#include "pdb/prob_database.h"

namespace mrsl {
namespace {

class LazyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(55);
    bn_ = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
    Relation full = bn_.SampleRelation(8000, &rng);
    rel_ = Relation(full.schema());
    Rng mask_rng(56);
    for (size_t i = 0; i < 200; ++i) {
      Tuple t = full.row(i);
      if (mask_rng.Bernoulli(0.4)) {
        t.set_value(static_cast<AttrId>(mask_rng.UniformInt(4)),
                    kMissingValue);
      }
      ASSERT_TRUE(rel_.Append(std::move(t)).ok());
    }
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(full, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  GibbsOptions GOpts() {
    GibbsOptions g;
    g.samples = 1500;
    g.burn_in = 100;
    g.seed = 99;
    return g;
  }

  BayesNet bn_;
  Relation rel_;
  MrslModel model_;
};

TEST_F(LazyTest, CompleteRowsNeedNoInference) {
  Relation complete_only(rel_.schema());
  for (const Tuple& t : rel_.rows()) {
    if (t.IsComplete()) {
      ASSERT_TRUE(complete_only.Append(t).ok());
    }
  }
  LazyDeriver lazy(&model_, &complete_only, GOpts());
  auto count = lazy.ExpectedCount(Predicate::Eq(0, 0));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(lazy.materialized(), 0u);
  // Exact count over complete rows.
  size_t expect = 0;
  for (const Tuple& t : complete_only.rows()) expect += t.value(0) == 0;
  EXPECT_DOUBLE_EQ(*count, static_cast<double>(expect));
}

TEST_F(LazyTest, ShortCircuitsDecidedIncompleteRows) {
  // Predicate touches only attribute 0; rows missing other attributes
  // are decided without inference.
  LazyDeriver lazy(&model_, &rel_, GOpts());
  Predicate pred = Predicate::Eq(0, 0);
  auto count = lazy.ExpectedCount(pred);
  ASSERT_TRUE(count.ok());
  std::unordered_set<Tuple, TupleHash> distinct_missing_attr0;
  size_t rows_missing_attr0 = 0;
  for (const Tuple& t : rel_.rows()) {
    if (t.value(0) == kMissingValue) {
      ++rows_missing_attr0;
      distinct_missing_attr0.insert(t);
    }
  }
  ASSERT_GT(rows_missing_attr0, 0u);
  // Only rows actually missing attribute 0 get materialized, and the
  // cache collapses duplicates to one entry per distinct tuple.
  EXPECT_EQ(lazy.materialized(), distinct_missing_attr0.size());
  EXPECT_GT(lazy.short_circuits(), 0u);
}

TEST_F(LazyTest, MatchesEagerDerivation) {
  // Eager: run the workload, build the ProbDatabase, query it.
  std::vector<Tuple> workload;
  for (uint32_t r : rel_.IncompleteRowIndices()) {
    workload.push_back(rel_.row(r));
  }
  WorkloadOptions wl;
  wl.gibbs = GOpts();
  auto dists =
      RunWorkload(model_, workload, SamplingMode::kTupleAtATime, wl);
  ASSERT_TRUE(dists.ok());
  auto db = ProbDatabase::FromInference(rel_, *dists);
  ASSERT_TRUE(db.ok());

  LazyDeriver lazy(&model_, &rel_, GOpts());
  for (const Predicate& pred :
       {Predicate::Eq(0, 0), Predicate::Eq(2, 1),
        Predicate::Eq(1, 0).And(Predicate::Eq(3, 1))}) {
    auto lazy_count = lazy.ExpectedCount(pred);
    ASSERT_TRUE(lazy_count.ok());
    double eager_count = ExpectedCount(*db, pred);
    // Both estimates are Monte-Carlo with modest N; they agree loosely
    // per-query and exactly on decided rows.
    EXPECT_NEAR(*lazy_count, eager_count, rel_.num_rows() * 0.02);

    auto lazy_exists = lazy.ProbExists(pred);
    ASSERT_TRUE(lazy_exists.ok());
    EXPECT_NEAR(*lazy_exists, ProbExists(*db, pred), 0.1);
  }
}

TEST_F(LazyTest, CountDistributionIsADistribution) {
  LazyDeriver lazy(&model_, &rel_, GOpts());
  auto dist = lazy.CountDistribution(Predicate::Eq(0, 1));
  ASSERT_TRUE(dist.ok());
  double sum = 0.0;
  for (double p : *dist) {
    EXPECT_GE(p, -1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Mean of the distribution equals the expected count.
  auto count = lazy.ExpectedCount(Predicate::Eq(0, 1));
  ASSERT_TRUE(count.ok());
  double mean = 0.0;
  for (size_t k = 0; k < dist->size(); ++k) {
    mean += static_cast<double>(k) * (*dist)[k];
  }
  EXPECT_NEAR(mean, *count, 1e-9);
}

TEST_F(LazyTest, MaterializationIsCachedAcrossQueries) {
  LazyDeriver lazy(&model_, &rel_, GOpts());
  ASSERT_TRUE(lazy.ExpectedCount(Predicate::Eq(0, 0)).ok());
  size_t after_first = lazy.materialized();
  // Same predicate again: no new materializations.
  ASSERT_TRUE(lazy.ExpectedCount(Predicate::Eq(0, 0)).ok());
  EXPECT_EQ(lazy.materialized(), after_first);
  // A predicate over another attribute may add more.
  ASSERT_TRUE(lazy.ExpectedCount(Predicate::Eq(1, 0)).ok());
  EXPECT_GE(lazy.materialized(), after_first);
}

TEST_F(LazyTest, RowProbabilityValidatesRange) {
  LazyDeriver lazy(&model_, &rel_, GOpts());
  EXPECT_FALSE(lazy.RowProbability(rel_.num_rows(), Predicate()).ok());
}

}  // namespace
}  // namespace mrsl
