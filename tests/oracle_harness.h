// Shared fixtures for suites that check the plan algebra against a
// ground-truth oracle: the small hand-built BID databases, exhaustive
// possible-world enumeration, and the randomized BID/plan generators
// the differential sweeps draw from. Extracted from pdb_plan_test.cc
// and cross_module_property_test.cc so the compiler conformance suite
// pins its bounds against the exact same corpus.

#ifndef MRSL_TESTS_ORACLE_HARNESS_H_
#define MRSL_TESTS_ORACLE_HARNESS_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "pdb/plan.h"
#include "pdb/prob_database.h"
#include "pdb/query.h"
#include "util/rng.h"

namespace mrsl {
namespace oracle_harness {

inline Schema TwoAttrSchema() {
  auto s = Schema::Create(
      {Attribute("inc", {"50K", "100K"}), Attribute("nw", {"100K", "500K"})});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

// Same 3-block database as pdb_query_test: one certain block, one full
// block, one with mass 0.9 (a possibly-absent tuple).
inline ProbDatabase SmallDb() {
  ProbDatabase db(TwoAttrSchema());
  Block b1;
  b1.alternatives.push_back({Tuple({1, 1}), 1.0});
  EXPECT_TRUE(db.AddBlock(b1).ok());
  Block b2;
  b2.alternatives.push_back({Tuple({0, 0}), 0.3});
  b2.alternatives.push_back({Tuple({1, 0}), 0.7});
  EXPECT_TRUE(db.AddBlock(b2).ok());
  Block b3;
  b3.alternatives.push_back({Tuple({0, 1}), 0.5});
  b3.alternatives.push_back({Tuple({1, 1}), 0.4});  // mass 0.9
  EXPECT_TRUE(db.AddBlock(b3).ok());
  return db;
}

// Enumerates every possible world as a choice vector (alternative index
// per block, kNoAlternative for absence) with its probability.
inline void ForEachWorldChoices(
    const ProbDatabase& db,
    const std::function<void(const std::vector<int32_t>&, double)>& fn) {
  std::vector<int32_t> choices(db.num_blocks(), kNoAlternative);
  std::function<void(size_t, double)> rec = [&](size_t i, double p) {
    if (i == db.num_blocks()) {
      fn(choices, p);
      return;
    }
    const Block& b = db.block(i);
    for (size_t j = 0; j < b.alternatives.size(); ++j) {
      choices[i] = static_cast<int32_t>(j);
      rec(i + 1, p * b.alternatives[j].prob);
    }
    double absent = b.AbsentMass();
    if (absent > 1e-12) {
      choices[i] = kNoAlternative;
      rec(i + 1, p * absent);
    }
    choices[i] = kNoAlternative;
  };
  rec(0, 1.0);
}

// Ground-truth marginal of `target` in the plan result, by enumeration.
inline double TrueMarginal(const PlanNode& plan, const ProbDatabase& db,
                           const Tuple& target) {
  double truth = 0.0;
  ForEachWorldChoices(db, [&](const std::vector<int32_t>& choices, double p) {
    auto bag = EvaluatePlanInWorld(plan, {&db}, {choices});
    ASSERT_TRUE(bag.ok());
    for (const Tuple& t : *bag) {
      if (t == target) {
        truth += p;
        return;
      }
    }
  });
  return truth;
}

inline Schema ThreeAttrSchema() {
  auto s = Schema::Create({Attribute("a", {"a0", "a1"}),
                           Attribute("b", {"b0", "b1", "b2"}),
                           Attribute("c", {"c0", "c1"})});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

// A random BID database: 4-7 blocks of 1-3 complete alternatives; about
// half the blocks keep some absent mass (total < 1).
inline ProbDatabase RandomBid(const Schema& schema, Rng* rng) {
  ProbDatabase db(schema);
  size_t blocks = 4 + rng->UniformInt(4);
  for (size_t i = 0; i < blocks; ++i) {
    Block block;
    size_t alts = 1 + rng->UniformInt(3);
    double remaining =
        rng->Bernoulli(0.5) ? 1.0 : 0.4 + 0.5 * rng->NextDouble();
    for (size_t j = 0; j < alts; ++j) {
      Tuple t(schema.num_attrs());
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        t.set_value(a, static_cast<ValueId>(
                           rng->UniformInt(schema.attr(a).cardinality())));
      }
      double p = j + 1 == alts ? remaining
                               : remaining * (0.2 + 0.6 * rng->NextDouble());
      remaining -= p;
      block.alternatives.push_back({std::move(t), p});
    }
    // Distinct alternatives only (duplicates are legal but make the
    // fixture's hand bookkeeping murky).
    EXPECT_TRUE(db.AddBlock(std::move(block)).ok());
  }
  return db;
}

inline Predicate RandomPred(const Schema& schema, Rng* rng) {
  Predicate pred;
  size_t atoms = 1 + rng->UniformInt(2);
  for (size_t k = 0; k < atoms; ++k) {
    AttrId a = static_cast<AttrId>(rng->UniformInt(schema.num_attrs()));
    ValueId v = static_cast<ValueId>(
        rng->UniformInt(schema.attr(a).cardinality()));
    pred = pred.And(rng->Bernoulli(0.3) ? Predicate::Ne(a, v)
                                        : Predicate::Eq(a, v));
  }
  return pred;
}

// A random plan over `sources`: optionally-selected scans, optionally
// joined (possibly with the SAME source — the unsafe shape), optionally
// projected. Exercises every operator.
inline PlanPtr RandomPlan(const std::vector<const ProbDatabase*>& sources,
                          Rng* rng, size_t* out_arity) {
  size_t s1 = rng->UniformInt(sources.size());
  PlanPtr plan = ScanPlan(s1);
  const Schema& schema1 = sources[s1]->schema();
  if (rng->Bernoulli(0.7)) {
    plan = SelectPlan(RandomPred(schema1, rng), std::move(plan));
  }
  size_t arity = schema1.num_attrs();
  if (rng->Bernoulli(0.5)) {
    size_t s2 = rng->UniformInt(sources.size());
    PlanPtr rhs = ScanPlan(s2);
    const Schema& schema2 = sources[s2]->schema();
    if (rng->Bernoulli(0.5)) {
      rhs = SelectPlan(RandomPred(schema2, rng), std::move(rhs));
    }
    plan = JoinPlan(std::move(plan), std::move(rhs),
                    static_cast<AttrId>(rng->UniformInt(arity)),
                    static_cast<AttrId>(
                        rng->UniformInt(schema2.num_attrs())));
    arity += schema2.num_attrs();
  }
  if (rng->Bernoulli(0.6)) {
    size_t keep = 1 + rng->UniformInt(2);
    std::vector<AttrId> attrs;
    for (size_t k = 0; k < keep; ++k) {
      attrs.push_back(static_cast<AttrId>(rng->UniformInt(arity)));
    }
    plan = ProjectPlan(attrs, std::move(plan));
    arity = attrs.size();
  }
  *out_arity = arity;
  return plan;
}

}  // namespace oracle_harness
}  // namespace mrsl

#endif  // MRSL_TESTS_ORACLE_HARNESS_H_
