// Tests for continuous-attribute discretization (Sec II preprocessing).

#include "relational/discretizer.h"

#include <gtest/gtest.h>

namespace mrsl {
namespace {

TEST(LearnBucketsTest, EqualWidthBoundaries) {
  auto map = LearnBuckets("x", {0.0, 10.0, 5.0, 2.5}, 4,
                          BucketStrategy::kEqualWidth);
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->boundaries.size(), 3u);
  EXPECT_DOUBLE_EQ(map->boundaries[0], 2.5);
  EXPECT_DOUBLE_EQ(map->boundaries[1], 5.0);
  EXPECT_DOUBLE_EQ(map->boundaries[2], 7.5);
  EXPECT_EQ(map->labels.size(), 4u);
}

TEST(LearnBucketsTest, BucketOfAssignsCorrectly) {
  auto map = LearnBuckets("x", {0.0, 10.0}, 2, BucketStrategy::kEqualWidth);
  ASSERT_TRUE(map.ok());  // boundary at 5
  EXPECT_EQ(map->BucketOf(-100.0), 0u);  // open-ended low
  EXPECT_EQ(map->BucketOf(4.99), 0u);
  EXPECT_EQ(map->BucketOf(5.0), 1u);  // boundary belongs to upper bucket
  EXPECT_EQ(map->BucketOf(999.0), 1u);  // open-ended high
}

TEST(LearnBucketsTest, EqualFrequencySplitsCounts) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  auto map =
      LearnBuckets("x", values, 4, BucketStrategy::kEqualFrequency);
  ASSERT_TRUE(map.ok());
  // Each bucket gets ~25 of the 100 values.
  std::vector<int> counts(map->labels.size(), 0);
  for (double v : values) ++counts[map->BucketOf(v)];
  for (int c : counts) EXPECT_NEAR(c, 25, 1);
}

TEST(LearnBucketsTest, EqualFrequencyMergesTies) {
  // Heavily tied data: quantile boundaries collapse.
  std::vector<double> values(50, 1.0);
  values.push_back(2.0);
  auto map =
      LearnBuckets("x", values, 4, BucketStrategy::kEqualFrequency);
  ASSERT_TRUE(map.ok());
  EXPECT_LT(map->labels.size(), 4u);
}

TEST(LearnBucketsTest, Validation) {
  EXPECT_FALSE(LearnBuckets("x", {1.0}, 1, BucketStrategy::kEqualWidth)
                   .ok());  // too few buckets
  EXPECT_FALSE(
      LearnBuckets("x", {}, 2, BucketStrategy::kEqualWidth).ok());
  EXPECT_FALSE(LearnBuckets("x", {3.0, 3.0}, 2,
                            BucketStrategy::kEqualWidth)
                   .ok());  // constant column
}

TEST(DiscretizeCsvTest, EndToEnd) {
  const char* csv =
      "name,age,score\n"
      "a,10,0.1\n"
      "b,20,0.9\n"
      "c,30,0.5\n"
      "d,?,0.3\n"
      "e,40,?\n";
  auto result = DiscretizeCsv(
      csv, {{"age", 2, BucketStrategy::kEqualWidth},
            {"score", 2, BucketStrategy::kEqualFrequency}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Relation& rel = result->relation;
  EXPECT_EQ(rel.num_rows(), 5u);
  // `name` untouched (5 labels), age bucketed to 2, score to <= 2.
  AttrId name_id = 0;
  AttrId age_id = 0;
  ASSERT_TRUE(rel.schema().FindAttr("name", &name_id));
  ASSERT_TRUE(rel.schema().FindAttr("age", &age_id));
  EXPECT_EQ(rel.schema().attr(name_id).cardinality(), 5u);
  EXPECT_LE(rel.schema().attr(age_id).cardinality(), 2u);
  // Missing cells survive.
  EXPECT_EQ(rel.row(3).value(age_id), kMissingValue);
  // 10 and 20 land in the low bucket, 30 and 40 in the high one.
  EXPECT_EQ(rel.row(0).value(age_id), rel.row(1).value(age_id));
  EXPECT_EQ(rel.row(2).value(age_id), rel.row(4).value(age_id));
  EXPECT_NE(rel.row(0).value(age_id), rel.row(2).value(age_id));
}

TEST(DiscretizeCsvTest, RejectsNonNumeric) {
  auto result = DiscretizeCsv("x\nabc\n",
                              {{"x", 2, BucketStrategy::kEqualWidth}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DiscretizeCsvTest, RejectsUnknownColumn) {
  auto result = DiscretizeCsv("x\n1\n",
                              {{"zzz", 2, BucketStrategy::kEqualWidth}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DiscretizeCsvTest, IntervalLabelsAreReadable) {
  auto result = DiscretizeCsv("v\n0\n100\n50\n",
                              {{"v", 2, BucketStrategy::kEqualWidth}});
  ASSERT_TRUE(result.ok());
  AttrId v = 0;
  ASSERT_TRUE(result->relation.schema().FindAttr("v", &v));
  const Attribute& attr = result->relation.schema().attr(v);
  bool found_inf = false;
  for (size_t i = 0; i < attr.cardinality(); ++i) {
    if (attr.label(static_cast<ValueId>(i)).find("inf") !=
        std::string::npos) {
      found_inf = true;
    }
  }
  EXPECT_TRUE(found_inf);  // open-ended extreme buckets
}

}  // namespace
}  // namespace mrsl
