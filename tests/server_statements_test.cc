// Tests for the statement digest store (server/statements.h): exact
// streaming aggregates, histogram-derived percentiles, LRU eviction at
// the per-shard cap with the monotone eviction counter, reset
// semantics, and a concurrent record + scrape hammer (the store is
// read while written in production — /debug/statements scrapes while
// handler threads record).

#include "server/statements.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mrsl {
namespace {

StatementSample Sample(uint64_t fingerprint, double elapsed = 0.01) {
  StatementSample s;
  s.fingerprint = fingerprint;
  s.kind = "count";
  s.normalized = "count(select(a=?; scan(0)))";
  s.elapsed_seconds = elapsed;
  return s;
}

TEST(StatementStoreTest, AggregatesAreExact) {
  StatementStore store(64);

  StatementSample miss = Sample(42, 0.020);
  miss.rows = 7;
  miss.width = 0.25;
  miss.resources.peak_batch_bytes = 1000;
  miss.resources.peak_lineage_bytes = 400;
  miss.resources.lineage_events = 12;
  miss.resources.worlds_sampled = 3;
  store.Record(miss);

  StatementSample hit = Sample(42, 0.001);
  hit.cache_hit = true;
  hit.rows = 7;
  hit.width = 0.25;
  store.Record(hit);

  StatementSample compiled = Sample(42, 0.050);
  compiled.compiled = true;
  compiled.rows = 7;
  compiled.width = 0.10;
  compiled.resources.peak_batch_bytes = 500;  // below the running peak
  compiled.resources.peak_lineage_bytes = 900;
  compiled.resources.lineage_events = 5;
  compiled.resources.worlds_sampled = 64;
  store.Record(compiled);

  StatementSample err = Sample(42, 0.002);
  err.error = true;
  store.Record(err);

  auto digests = store.Snapshot();
  ASSERT_EQ(digests.size(), 1u);
  const StatementDigest& d = digests[0];
  EXPECT_EQ(d.fingerprint, 42u);
  EXPECT_EQ(d.kind, "count");
  EXPECT_EQ(d.calls, 4u);
  EXPECT_EQ(d.errors, 1u);
  EXPECT_EQ(d.cache_hits, 1u);
  // Errors are neither hits nor misses: 4 calls = 1 hit + 2 misses + 1
  // error.
  EXPECT_EQ(d.cache_misses, 2u);
  EXPECT_EQ(d.compiled_calls, 1u);
  EXPECT_DOUBLE_EQ(d.total_seconds, 0.073);
  EXPECT_DOUBLE_EQ(d.max_seconds, 0.050);
  EXPECT_EQ(d.total_rows, 21u);
  EXPECT_DOUBLE_EQ(d.total_width, 0.60);
  EXPECT_DOUBLE_EQ(d.max_width, 0.25);
  EXPECT_EQ(d.peak_batch_bytes, 1000u);    // max, not sum
  EXPECT_EQ(d.peak_lineage_bytes, 900u);
  EXPECT_EQ(d.lineage_events, 17u);        // sum
  EXPECT_EQ(d.worlds_sampled, 67u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.evictions(), 0u);
}

TEST(StatementStoreTest, PercentilesComeFromTheHistogram) {
  StatementStore store(64);
  const std::vector<double>& bounds = StatementLatencyBounds();
  // 99 fast calls and 1 slow one: p50 lands in the fast bucket, p99 in
  // the slow one.
  for (int i = 0; i < 99; ++i) store.Record(Sample(7, 0.001));
  store.Record(Sample(7, 1.0));
  auto digests = store.Snapshot();
  ASSERT_EQ(digests.size(), 1u);
  // The estimates are bucket upper bounds: p50 <= the bucket holding
  // 1ms, p99 >= the bucket holding 1s, and both are real bounds.
  EXPECT_LE(digests[0].p50_seconds, 0.01);
  EXPECT_GE(digests[0].p99_seconds, 1.0);
  EXPECT_LE(digests[0].p99_seconds, bounds.back());
  uint64_t total = 0;
  for (uint64_t c : digests[0].latency_counts) total += c;
  EXPECT_EQ(total, 100u);
}

TEST(StatementStoreTest, DistinctKindsAreDistinctDigests) {
  StatementStore store(64);
  StatementSample count_sample = Sample(42);
  StatementSample exists_sample = Sample(42);
  exists_sample.kind = "exists";
  store.Record(count_sample);
  store.Record(exists_sample);
  EXPECT_EQ(store.Snapshot().size(), 2u);
}

TEST(StatementStoreTest, LruEvictionAtTheShardCap) {
  // Capacity 16 floors at one digest per shard; fingerprints 1 and 17
  // share shard 1 (mod 16), so the second insert evicts the first.
  StatementStore store(16);
  store.Record(Sample(1));
  store.Record(Sample(2));  // a different shard — no eviction
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 0u);

  store.Record(Sample(17));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 1u);
  auto digests = store.Snapshot();
  bool has_1 = false, has_17 = false;
  for (const auto& d : digests) {
    if (d.fingerprint == 1) has_1 = true;
    if (d.fingerprint == 17) has_17 = true;
  }
  EXPECT_FALSE(has_1);
  EXPECT_TRUE(has_17);
}

TEST(StatementStoreTest, EvictionPicksTheLeastRecentlyUpdated) {
  // Two digests per shard (capacity 32): insert 1 then 17, touch 1,
  // insert 33 — 17 is the least recently updated and must go.
  StatementStore store(32);
  store.Record(Sample(1));
  store.Record(Sample(17));
  store.Record(Sample(1));   // touch: 1 is now most recent
  store.Record(Sample(33));  // evicts 17
  EXPECT_EQ(store.evictions(), 1u);
  auto digests = store.Snapshot();
  ASSERT_EQ(digests.size(), 2u);
  for (const auto& d : digests) EXPECT_NE(d.fingerprint, 17u);
}

TEST(StatementStoreTest, ResetDropsDigestsButKeepsEvictions) {
  StatementStore store(16);
  store.Record(Sample(1));
  store.Record(Sample(17));  // evicts 1
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.Reset(), 1u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Snapshot().empty());
  EXPECT_EQ(store.evictions(), 1u);  // monotone across resets
  store.Record(Sample(1));
  EXPECT_EQ(store.size(), 1u);
}

TEST(StatementStoreTest, ConcurrentRecordAndScrape) {
  StatementStore store(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};

  // A scraper hammers Snapshot while writers record; every snapshot
  // must be internally consistent (calls == hits + misses per digest —
  // no torn digest is ever visible).
  std::thread scraper([&] {
    while (!stop.load()) {
      for (const StatementDigest& d : store.Snapshot()) {
        EXPECT_EQ(d.calls, d.cache_hits + d.cache_misses + d.errors);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        StatementSample s = Sample(static_cast<uint64_t>(i % 8), 0.001);
        s.cache_hit = (t + i) % 2 == 0;
        store.Record(s);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  scraper.join();

  uint64_t calls = 0;
  for (const StatementDigest& d : store.Snapshot()) calls += d.calls;
  EXPECT_EQ(calls, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(store.size(), 8u);
  EXPECT_EQ(store.evictions(), 0u);
}

}  // namespace
}  // namespace mrsl
