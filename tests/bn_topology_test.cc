// Tests for Topology: validation, depth, and the shape builders.

#include "bn/topology.h"

#include <gtest/gtest.h>

namespace mrsl {
namespace {

TEST(TopologyTest, RejectsCycle) {
  auto t = Topology::Create({"a", "b"}, {2, 2}, {{1}, {0}});
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("cycle"), std::string::npos);
}

TEST(TopologyTest, RejectsSelfLoop) {
  auto t = Topology::Create({"a"}, {2}, {{0}});
  ASSERT_FALSE(t.ok());
}

TEST(TopologyTest, RejectsOutOfRangeParent) {
  auto t = Topology::Create({"a", "b"}, {2, 2}, {{}, {5}});
  ASSERT_FALSE(t.ok());
}

TEST(TopologyTest, RejectsUnaryCardinality) {
  auto t = Topology::Create({"a"}, {1}, {{}});
  ASSERT_FALSE(t.ok());
}

TEST(TopologyTest, TopoOrderRespectsParents) {
  auto t = Topology::Create({"a", "b", "c"}, {2, 2, 2}, {{2}, {0}, {}});
  ASSERT_TRUE(t.ok());
  const auto& order = t->topo_order();
  std::vector<size_t> pos(3);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[2], pos[0]);  // c before a
  EXPECT_LT(pos[0], pos[1]);  // a before b
}

TEST(TopologyTest, IndependentHasDepthZero) {
  Topology t = Topology::Independent(5, 3);
  EXPECT_EQ(t.num_vars(), 5u);
  EXPECT_EQ(t.Depth(), 0u);
  EXPECT_EQ(t.DomainSize(), 243u);
  EXPECT_DOUBLE_EQ(t.AvgCard(), 3.0);
}

TEST(TopologyTest, ChainDepthIsEdges) {
  Topology t = Topology::Chain(6, 2);
  EXPECT_EQ(t.Depth(), 5u);
  EXPECT_EQ(t.DomainSize(), 64u);
  for (AttrId i = 1; i < 6; ++i) {
    ASSERT_EQ(t.parents(i).size(), 1u);
    EXPECT_EQ(t.parents(i)[0], i - 1);
  }
  EXPECT_TRUE(t.parents(0).empty());
}

TEST(TopologyTest, CrownShape) {
  Topology t = Topology::Crown(6, 2);
  EXPECT_EQ(t.Depth(), 2u);
  // Source has no parents; middles have the source; sink has all middles.
  EXPECT_TRUE(t.parents(0).empty());
  for (AttrId i = 1; i < 5; ++i) {
    ASSERT_EQ(t.parents(i).size(), 1u);
    EXPECT_EQ(t.parents(i)[0], 0u);
  }
  EXPECT_EQ(t.parents(5).size(), 4u);
}

TEST(TopologyTest, CrownOfFourIsDiamond) {
  Topology t = Topology::Crown(4, 2);
  EXPECT_EQ(t.num_vars(), 4u);
  EXPECT_EQ(t.Depth(), 2u);
  EXPECT_EQ(t.DomainSize(), 16u);
}

TEST(TopologyTest, DiamondStackDepth) {
  EXPECT_EQ(Topology::DiamondStack(1, 2).Depth(), 2u);
  EXPECT_EQ(Topology::DiamondStack(2, 2).Depth(), 4u);
  EXPECT_EQ(Topology::DiamondStack(3, 2).num_vars(), 10u);
}

TEST(TopologyTest, LayeredDepthAndWiring) {
  Topology t = Topology::Layered({3, 3, 2, 2}, std::vector<uint32_t>(10, 2),
                                 2);
  EXPECT_EQ(t.num_vars(), 10u);
  EXPECT_EQ(t.Depth(), 3u);
  // Roots have no parents.
  for (AttrId i = 0; i < 3; ++i) EXPECT_TRUE(t.parents(i).empty());
  // Later layers have up to 2 parents in the previous layer.
  for (AttrId i = 3; i < 10; ++i) {
    EXPECT_GE(t.parents(i).size(), 1u);
    EXPECT_LE(t.parents(i).size(), 2u);
  }
}

TEST(TopologyTest, WithCardsReplacesCardinalities) {
  Topology t = Topology::Crown(4, 2).WithCards({3, 4, 5, 5});
  EXPECT_EQ(t.DomainSize(), 300u);
  EXPECT_EQ(t.Depth(), 2u);  // structure unchanged
}

}  // namespace
}  // namespace mrsl
