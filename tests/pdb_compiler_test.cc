// Conformance suite for the safe-plan compiler (pdb/compiler.h).
//
// The contract under test, anchored to two oracles:
//  - exhaustive possible-world enumeration on the small fixtures (exact
//    ground truth), and
//  - the chunk-seeded Monte-Carlo plan oracle on the randomized corpus
//    (every compiled [lower, upper] must bracket the estimate within
//    the oracle's confidence half-width).
// Plus the determinism contract: with budget_ms == 0 the compiler is a
// pure function of (plan, sources, options) — bit-identical outputs
// under 1, 2, and 8 concurrent evaluations — and the anytime knobs only
// ever tighten the envelope.

#include "pdb/compiler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "oracle_harness.h"
#include "pdb/plan.h"
#include "pdb/query.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mrsl {
namespace {

using oracle_harness::ForEachWorldChoices;
using oracle_harness::RandomBid;
using oracle_harness::RandomPlan;
using oracle_harness::SmallDb;
using oracle_harness::ThreeAttrSchema;
using oracle_harness::TrueMarginal;
using oracle_harness::TwoAttrSchema;

// The two-block database whose self-join-project is the canonical
// unsafe shape (same fixture as PlanTest.UnsafePlanYieldsBounds...).
ProbDatabase CorrelatedDb() {
  ProbDatabase db(TwoAttrSchema());
  Block b1;
  b1.alternatives.push_back({Tuple({0, 0}), 0.3});
  b1.alternatives.push_back({Tuple({1, 0}), 0.7});
  EXPECT_TRUE(db.AddBlock(b1).ok());
  Block b2;
  b2.alternatives.push_back({Tuple({0, 1}), 0.5});
  b2.alternatives.push_back({Tuple({1, 1}), 0.4});
  EXPECT_TRUE(db.AddBlock(b2).ok());
  return db;
}

TEST(CompilerTest, SafePlansMatchExactEvaluator) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  std::vector<PlanPtr> plans;
  plans.push_back(ScanPlan(0));
  plans.push_back(SelectPlan(Predicate::Eq(0, 1), ScanPlan(0)));
  plans.push_back(ProjectPlan({1}, ScanPlan(0)));
  plans.push_back(
      ProjectPlan({0}, SelectPlan(Predicate::Eq(1, 1), ScanPlan(0))));

  for (size_t pi = 0; pi < plans.size(); ++pi) {
    auto baseline = EvaluatePlan(*plans[pi], sources);
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(baseline->safe) << "fixture must be safe, plan " << pi;
    auto compiled = CompileQuery(*plans[pi], sources);
    ASSERT_TRUE(compiled.ok()) << "plan " << pi;
    EXPECT_TRUE(compiled->stats.plan_safe) << "plan " << pi;
    EXPECT_TRUE(compiled->result.safe) << "plan " << pi;
    EXPECT_EQ(compiled->stats.mean_width_final, 0.0) << "plan " << pi;

    ASSERT_EQ(compiled->result.rows.size(), baseline->rows.size())
        << "plan " << pi;
    for (size_t r = 0; r < baseline->rows.size(); ++r) {
      EXPECT_EQ(compiled->result.rows[r].tuple.values(),
                baseline->rows[r].tuple.values());
      EXPECT_NEAR(compiled->result.rows[r].prob.lo,
                  baseline->rows[r].prob.lo, 1e-12);
      EXPECT_NEAR(compiled->result.rows[r].prob.hi,
                  baseline->rows[r].prob.hi, 1e-12);
    }
    auto exists = EvaluateExists(*plans[pi], sources);
    auto count = EvaluateCount(*plans[pi], sources);
    ASSERT_TRUE(exists.ok());
    ASSERT_TRUE(count.ok());
    EXPECT_NEAR(compiled->exists.prob.lo, exists->prob.lo, 1e-12);
    EXPECT_NEAR(compiled->exists.prob.hi, exists->prob.hi, 1e-12);
    EXPECT_NEAR(compiled->count.expected.lo, count->expected.lo, 1e-12);
    EXPECT_NEAR(compiled->count.expected.hi, count->expected.hi, 1e-12);
  }
}

TEST(CompilerTest, CorrelatedSelfJoinRefinesToEnumeratedTruth) {
  // project(nw; join(scan, scan; inc=inc)): the baseline must
  // dissociate, while the lattice search (default budget) conditions
  // the two shared blocks away entirely and lands on the exact answer.
  ProbDatabase db = CorrelatedDb();
  std::vector<const ProbDatabase*> sources = {&db};
  auto plan = ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));

  auto baseline = EvaluatePlan(*plan, sources);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->safe);
  auto base_marginals = DistinctMarginals(*baseline, sources);

  auto compiled = CompileQuery(*plan, sources);
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(compiled->stats.plan_safe);
  EXPECT_GT(compiled->stats.groups_total, 0u);
  EXPECT_GT(compiled->stats.worlds_expanded, 0u);
  EXPECT_LE(compiled->stats.mean_width_final,
            compiled->stats.mean_width_base);

  std::map<std::vector<ValueId>, ProbInterval> base;
  for (const DistinctMarginal& m : base_marginals) {
    base[m.tuple.values()] = m.prob;
  }
  for (const DistinctMarginal& m : compiled->marginals) {
    double truth = TrueMarginal(*plan, db, m.tuple);
    // The default world budget fully conditions this tiny core: the
    // envelope must have collapsed onto the enumerated truth.
    EXPECT_NEAR(m.prob.lo, truth, 1e-9) << m.tuple.ToString(db.schema());
    EXPECT_NEAR(m.prob.hi, truth, 1e-9) << m.tuple.ToString(db.schema());
    // And it must be nested in the baseline dissociation interval.
    auto it = base.find(m.tuple.values());
    ASSERT_TRUE(it != base.end());
    EXPECT_GE(m.prob.lo, it->second.lo - 1e-9);
    EXPECT_LE(m.prob.hi, it->second.hi + 1e-9);
  }

  // EXISTS refines through the same lattice.
  double exists_truth = 0.0;
  ForEachWorldChoices(db, [&](const std::vector<int32_t>& choices, double p) {
    auto bag = EvaluatePlanInWorld(*plan, sources, {choices});
    ASSERT_TRUE(bag.ok());
    if (!bag->empty()) exists_truth += p;
  });
  EXPECT_NEAR(compiled->exists.prob.lo, exists_truth, 1e-9);
  EXPECT_NEAR(compiled->exists.prob.hi, exists_truth, 1e-9);
}

// The oracle-anchored corpus: safe, correlated, and adversarial
// fixtures plus a randomized sweep. Every compiled interval must
// bracket the Monte-Carlo estimate within the oracle's confidence
// half-width (20k trials -> binomial SE <= 0.0035; 0.02 is the same
// ~5.7 sigma band the existing differential suites use).
void ExpectCompiledBracketsOracle(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources,
    uint64_t seed, const CompileOptions& options = {}) {
  auto compiled = CompileQuery(plan, sources, options);
  ASSERT_TRUE(compiled.ok());

  OracleOptions oo;
  oo.trials = 20000;
  oo.seed = seed;
  auto oracle = MonteCarloPlanOracle(plan, sources, oo);
  ASSERT_TRUE(oracle.ok());
  const double tol = 0.02;  // CI half-width at 20k trials

  std::map<std::vector<ValueId>, double> freq;
  for (const ProbTuple& pt : oracle->marginals) {
    freq[pt.tuple.values()] = pt.prob;
  }
  for (const DistinctMarginal& m : compiled->marginals) {
    auto it = freq.find(m.tuple.values());
    double f = it == freq.end() ? 0.0 : it->second;
    EXPECT_LE(m.prob.lo - tol, f) << "seed " << seed;
    EXPECT_GE(m.prob.hi + tol, f) << "seed " << seed;
  }
  // Every tuple the oracle saw must be predicted by the compiler.
  for (const auto& [values, f] : freq) {
    bool found = false;
    for (const DistinctMarginal& m : compiled->marginals) {
      found = found || m.tuple.values() == values;
    }
    EXPECT_TRUE(found) << "oracle tuple missing from compiled result (freq "
                       << f << ", seed " << seed << ")";
  }
  EXPECT_LE(compiled->exists.prob.lo - tol, oracle->exists);
  EXPECT_GE(compiled->exists.prob.hi + tol, oracle->exists);

  const double count_tol =
      0.05 * std::max(1.0, compiled->count.expected.hi -
                               compiled->count.expected.lo + 1.0) +
      0.05 * std::max(1.0, compiled->count.expected.hi);
  EXPECT_LE(compiled->count.expected.lo - count_tol, oracle->expected_count);
  EXPECT_GE(compiled->count.expected.hi + count_tol, oracle->expected_count);
}

TEST(CompilerConformanceTest, FixturePlansBracketOracle) {
  ProbDatabase small = SmallDb();
  ProbDatabase corr = CorrelatedDb();
  for (const ProbDatabase* db : {&small, &corr}) {
    std::vector<const ProbDatabase*> sources = {db};
    std::vector<PlanPtr> plans;
    // Safe shapes.
    plans.push_back(ScanPlan(0));
    plans.push_back(ProjectPlan({0}, ScanPlan(0)));
    // The canonical correlated shape.
    plans.push_back(
        ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0)));
    // Adversarial: a three-way self-join chain projected to one
    // attribute — every row correlates with every other through two
    // join levels.
    plans.push_back(ProjectPlan(
        {1}, JoinPlan(JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0), ScanPlan(0),
                      1, 1)));
    // Adversarial: project BOTH attrs of a self-join (groups of size 1
    // with composite non-exact lineage).
    plans.push_back(
        ProjectPlan({0, 1}, JoinPlan(ScanPlan(0), ScanPlan(0), 1, 1)));
    uint64_t seed = 0x5EED0;
    for (const PlanPtr& plan : plans) {
      ExpectCompiledBracketsOracle(*plan, sources, seed++);
    }
  }
}

TEST(CompilerConformanceTest, RandomizedCorpusBracketsOracle) {
  Schema schema = ThreeAttrSchema();
  for (uint64_t seed : {7u, 19u, 41u}) {
    Rng rng(seed ^ 0xB0117EDULL);
    ProbDatabase db1 = RandomBid(schema, &rng);
    ProbDatabase db2 = RandomBid(schema, &rng);
    std::vector<const ProbDatabase*> sources = {&db1, &db2};
    for (int trial = 0; trial < 4; ++trial) {
      size_t arity = 0;
      PlanPtr plan = RandomPlan(sources, &rng, &arity);
      ExpectCompiledBracketsOracle(*plan, sources,
                                   seed * 101 + static_cast<uint64_t>(trial));
      // Anytime knobs must preserve soundness at every setting.
      CompileOptions tiny;
      tiny.max_worlds_per_group = 4;
      ExpectCompiledBracketsOracle(*plan, sources, seed * 103, tiny);
      CompileOptions limited;
      limited.refine_limit = 1;
      ExpectCompiledBracketsOracle(*plan, sources, seed * 107, limited);
    }
  }
}

// With budget_ms == 0 the compiler reads no clock: its output is a pure
// function of (plan, sources, options), so 1, 2, and 8 concurrent
// compilations must produce bit-identical envelopes — the same
// determinism contract the oracle and the columnar executor already
// honor.
TEST(CompilerConformanceTest, BitIdenticalAcrossThreadCounts) {
  ProbDatabase db = CorrelatedDb();
  std::vector<const ProbDatabase*> sources = {&db};
  std::vector<PlanPtr> plans;
  plans.push_back(ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0)));
  plans.push_back(
      ProjectPlan({0, 1}, JoinPlan(ScanPlan(0), ScanPlan(0), 1, 1)));
  plans.push_back(SelectPlan(Predicate::Eq(0, 1), ScanPlan(0)));

  // Reference: sequential compilation.
  std::vector<CompiledQuery> reference;
  for (const PlanPtr& plan : plans) {
    auto c = CompileQuery(*plan, sources);
    ASSERT_TRUE(c.ok());
    reference.push_back(std::move(c).value());
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    std::vector<CompiledQuery> got(plans.size());
    ThreadPool pool(threads);
    pool.ParallelFor(plans.size(), threads, [&](size_t i) {
      auto c = CompileQuery(*plans[i], sources);
      ASSERT_TRUE(c.ok());
      got[i] = std::move(c).value();
    });
    for (size_t i = 0; i < plans.size(); ++i) {
      ASSERT_EQ(got[i].marginals.size(), reference[i].marginals.size());
      for (size_t m = 0; m < reference[i].marginals.size(); ++m) {
        EXPECT_EQ(got[i].marginals[m].tuple, reference[i].marginals[m].tuple);
        EXPECT_EQ(got[i].marginals[m].prob.lo,
                  reference[i].marginals[m].prob.lo);
        EXPECT_EQ(got[i].marginals[m].prob.hi,
                  reference[i].marginals[m].prob.hi);
      }
      EXPECT_EQ(got[i].exists.prob.lo, reference[i].exists.prob.lo);
      EXPECT_EQ(got[i].exists.prob.hi, reference[i].exists.prob.hi);
      EXPECT_EQ(got[i].count.expected.lo, reference[i].count.expected.lo);
      EXPECT_EQ(got[i].count.expected.hi, reference[i].count.expected.hi);
      EXPECT_EQ(got[i].stats.worlds_expanded,
                reference[i].stats.worlds_expanded);
    }
  }
}

TEST(CompilerTest, AnytimeWorldBudgetOnlyTightens) {
  ProbDatabase db = CorrelatedDb();
  std::vector<const ProbDatabase*> sources = {&db};
  auto plan = ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));

  double prev_width = 2.0;
  for (size_t worlds : {size_t{0}, size_t{2}, size_t{16}, size_t{4096}}) {
    CompileOptions opts;
    opts.max_worlds_per_group = worlds;
    auto compiled = CompileQuery(*plan, sources, opts);
    ASSERT_TRUE(compiled.ok());
    double width = compiled->stats.mean_width_final;
    EXPECT_LE(width, prev_width + 1e-12) << "worlds=" << worlds;
    EXPECT_LE(width, compiled->stats.mean_width_base + 1e-12);
    if (worlds == 0) {
      // No lattice budget: the envelope IS the fixed dissociation.
      EXPECT_EQ(compiled->stats.mean_width_final,
                compiled->stats.mean_width_base);
      EXPECT_EQ(compiled->stats.worlds_expanded, 0u);
    }
    prev_width = width;
  }
  // The full budget collapses this fixture to exact answers.
  EXPECT_NEAR(prev_width, 0.0, 1e-12);
}

TEST(CompilerTest, WidthTargetStopsEarly) {
  ProbDatabase db = CorrelatedDb();
  std::vector<const ProbDatabase*> sources = {&db};
  auto plan = ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));

  auto base = CompileQuery(*plan, sources, [] {
    CompileOptions o;
    o.max_worlds_per_group = 0;
    return o;
  }());
  ASSERT_TRUE(base.ok());
  double base_width = base->stats.mean_width_base;
  ASSERT_GT(base_width, 0.0) << "fixture must start with slack";

  // A target looser than the base width: met immediately, no worlds.
  CompileOptions loose;
  loose.width_target = base_width + 0.1;
  auto l = CompileQuery(*plan, sources, loose);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->stats.width_target_met);
  EXPECT_EQ(l->stats.groups_refined, 0u);

  // A tight target: refinement runs until the mean width reaches it.
  CompileOptions tight;
  tight.width_target = 0.5 * base_width;
  auto t = CompileQuery(*plan, sources, tight);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->stats.width_target_met);
  EXPECT_LE(t->stats.mean_width_final, tight.width_target + 1e-12);
}

TEST(CompilerTest, PropagationFastPathScoresAreRanksNotBounds) {
  ProbDatabase db = CorrelatedDb();
  std::vector<const ProbDatabase*> sources = {&db};
  auto plan = ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));

  CompileOptions opts;
  opts.propagation_only = true;
  auto compiled = CompileQuery(*plan, sources, opts);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->stats.propagation);
  EXPECT_EQ(compiled->stats.worlds_expanded, 0u);
  ASSERT_FALSE(compiled->marginals.empty());
  for (const DistinctMarginal& m : compiled->marginals) {
    EXPECT_TRUE(m.prob.exact());  // a score is a single number
    EXPECT_GE(m.prob.lo, 0.0);
    EXPECT_LE(m.prob.hi, 1.0);
  }
}

TEST(CompilerTest, CacheSuffixSeparatesCompilerConfigurations) {
  CompileOptions a;
  CompileOptions b;
  EXPECT_EQ(CompileCacheSuffix(a), CompileCacheSuffix(b));
  EXPECT_FALSE(CompileCacheSuffix(a).empty());

  b.width_target = 0.05;
  EXPECT_NE(CompileCacheSuffix(a), CompileCacheSuffix(b));
  b = a;
  b.budget_ms = 10.0;
  EXPECT_NE(CompileCacheSuffix(a), CompileCacheSuffix(b));
  b = a;
  b.max_worlds_per_group = 16;
  EXPECT_NE(CompileCacheSuffix(a), CompileCacheSuffix(b));
  b = a;
  b.refine_limit = 3;
  EXPECT_NE(CompileCacheSuffix(a), CompileCacheSuffix(b));
  b = a;
  b.propagation_only = true;
  EXPECT_NE(CompileCacheSuffix(a), CompileCacheSuffix(b));
}

}  // namespace
}  // namespace mrsl
