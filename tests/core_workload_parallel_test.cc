// Tests for the parallel workload runner: thread-count-independent
// results, equivalence of per-component work, and validation.

#include "core/workload_parallel.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "bn/exact.h"
#include "core/learner.h"
#include "expfw/metrics.h"

namespace mrsl {
namespace {

class WorkloadParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(616);
    bn_ = BayesNet::RandomInstance(Topology::Crown(5, 2), &rng);
    Relation train = bn_.SampleRelation(12000, &rng);
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(train, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();

    Rng wl_rng(617);
    for (int i = 0; i < 60; ++i) {
      Tuple t = bn_.ForwardSample(&wl_rng);
      size_t k = 1 + wl_rng.UniformInt(3);
      for (size_t j = 0; j < k; ++j) {
        t.set_value(static_cast<AttrId>(wl_rng.UniformInt(5)),
                    kMissingValue);
      }
      workload_.push_back(std::move(t));
    }
  }

  WorkloadOptions WOpts() {
    WorkloadOptions o;
    o.gibbs.samples = 400;
    o.gibbs.burn_in = 50;
    o.gibbs.seed = 11;
    return o;
  }

  BayesNet bn_;
  MrslModel model_;
  std::vector<Tuple> workload_;
};

TEST_F(WorkloadParallelTest, RejectsAllAtATime) {
  EXPECT_FALSE(RunWorkloadParallel(model_, workload_,
                                   SamplingMode::kAllAtATime, WOpts())
                   .ok());
}

TEST_F(WorkloadParallelTest, EmptyWorkload) {
  auto result = RunWorkloadParallel(model_, {}, SamplingMode::kTupleDag,
                                    WOpts());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(WorkloadParallelTest, ThreadCountDoesNotChangeResults) {
  for (SamplingMode mode :
       {SamplingMode::kTupleAtATime, SamplingMode::kTupleDag}) {
    auto one = RunWorkloadParallel(model_, workload_, mode, WOpts(), 1);
    auto many = RunWorkloadParallel(model_, workload_, mode, WOpts(), 8);
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE(many.ok());
    ASSERT_EQ(one->size(), many->size());
    for (size_t i = 0; i < one->size(); ++i) {
      EXPECT_EQ((*one)[i].probs(), (*many)[i].probs())
          << "mode=" << SamplingModeName(mode) << " i=" << i;
    }
  }
}

TEST_F(WorkloadParallelTest, ResultsAlignedAndNormalized) {
  WorkloadStats stats;
  auto dists = RunWorkloadParallel(model_, workload_,
                                   SamplingMode::kTupleDag, WOpts(), 4,
                                   &stats);
  ASSERT_TRUE(dists.ok());
  ASSERT_EQ(dists->size(), workload_.size());
  for (size_t i = 0; i < workload_.size(); ++i) {
    EXPECT_EQ((*dists)[i].vars(), workload_[i].MissingAttrs());
    EXPECT_NEAR((*dists)[i].Sum(), 1.0, 1e-9);
  }
  EXPECT_GT(stats.points_sampled, 0u);
  // Distinct tuples add up across components to the global dedup count.
  TupleDag dag(workload_);
  EXPECT_EQ(stats.distinct_tuples, dag.num_nodes());
}

TEST_F(WorkloadParallelTest, AccuracyComparableToSequential) {
  auto par = RunWorkloadParallel(model_, workload_,
                                 SamplingMode::kTupleDag, WOpts(), 8);
  auto seq =
      RunWorkload(model_, workload_, SamplingMode::kTupleDag, WOpts());
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(seq.ok());
  AccuracyAccumulator par_acc;
  AccuracyAccumulator seq_acc;
  for (size_t i = 0; i < workload_.size(); ++i) {
    auto truth = TrueDistribution(bn_, workload_[i]);
    ASSERT_TRUE(truth.ok());
    par_acc.Add(KlDivergence(*truth, (*par)[i]), false);
    seq_acc.Add(KlDivergence(*truth, (*seq)[i]), false);
  }
  EXPECT_NEAR(par_acc.MeanKl(), seq_acc.MeanKl(), 0.05);
}

TEST_F(WorkloadParallelTest, DuplicateTuplesShareResults) {
  std::vector<Tuple> dup_workload = {workload_[0], workload_[1],
                                     workload_[0], workload_[0]};
  auto dists = RunWorkloadParallel(model_, dup_workload,
                                   SamplingMode::kTupleDag, WOpts(), 4);
  ASSERT_TRUE(dists.ok());
  EXPECT_EQ((*dists)[0].probs(), (*dists)[2].probs());
  EXPECT_EQ((*dists)[0].probs(), (*dists)[3].probs());
}

}  // namespace
}  // namespace mrsl
