// Tests for the Mrsl semi-lattice: Hasse structure, matching (all/best),
// and a randomized differential test of the inverted-index matcher
// against the linear-scan oracle.

#include "core/mrsl.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace mrsl {
namespace {

// Builds a meta-rule over 4 attributes (head attr 0 = "age") whose body
// assigns the given (attr, value) pairs.
MetaRule Rule(std::vector<std::pair<AttrId, ValueId>> body, double weight) {
  MetaRule r;
  r.head_attr = 0;
  r.body = Tuple(4);
  for (auto [a, v] : body) r.body.set_value(a, v);
  r.weight = weight;
  r.cpd = Cpd(3);
  return r;
}

// The Fig 2 lattice for `age`: attrs are age(0), edu(1), inc(2), nw(3);
// values: edu HS=0; inc 50K=0, 100K=1; nw 500K=1.
std::vector<MetaRule> Fig2Rules() {
  std::vector<MetaRule> rules;
  rules.push_back(Rule({}, 1.0));                    // 0: P(age)
  rules.push_back(Rule({{1, 0}}, 0.41));             // 1: P(age|edu=HS)
  rules.push_back(Rule({{2, 0}}, 0.30));             // 2: P(age|inc=50K)
  rules.push_back(Rule({{2, 1}}, 0.61));             // 3: P(age|inc=100K)
  rules.push_back(Rule({{3, 1}}, 0.43));             // 4: P(age|nw=500K)
  rules.push_back(Rule({{1, 0}, {2, 0}}, 0.30));     // 5: P(age|edu,inc)
  return rules;
}

Mrsl Fig2Lattice() { return Mrsl(0, 4, 3, Fig2Rules()); }

TEST(MrslTest, RulesSortedByBodySize) {
  Mrsl lattice = Fig2Lattice();
  ASSERT_EQ(lattice.num_rules(), 6u);
  for (size_t i = 1; i < lattice.num_rules(); ++i) {
    EXPECT_LE(lattice.rule(i - 1).body_size, lattice.rule(i).body_size);
  }
  EXPECT_EQ(lattice.rule(0).body_size, 0u);
  EXPECT_EQ(lattice.root(), 0);
}

TEST(MrslTest, HasseEdgesMatchFig2) {
  Mrsl lattice = Fig2Lattice();
  // After sorting, rules keep their construction order here (stable sort,
  // already size-ascending): 0 root, 1..4 singles, 5 the pair.
  // Root is the parent of every size-1 rule.
  for (size_t i = 1; i <= 4; ++i) {
    ASSERT_EQ(lattice.parents(i).size(), 1u) << i;
    EXPECT_EQ(lattice.parents(i)[0], 0u);
  }
  // The pair rule's parents: P(age|edu=HS) and P(age|inc=50K).
  std::vector<uint32_t> parents = lattice.parents(5);
  std::sort(parents.begin(), parents.end());
  EXPECT_EQ(parents, (std::vector<uint32_t>{1, 2}));
  // Children mirror parents.
  EXPECT_EQ(lattice.children(0).size(), 4u);
  EXPECT_EQ(lattice.children(1).size(), 1u);
  EXPECT_EQ(lattice.children(3).size(), 0u);
}

// Tuple t1 = <age=?, edu=HS, inc=50K, nw=500K>: the paper identifies
// exactly five matches (all but P(age|inc=100K)).
TEST(MrslTest, MatchAllFollowsPaperExample) {
  Mrsl lattice = Fig2Lattice();
  Tuple t1({kMissingValue, 0, 0, 1});
  auto matches = lattice.Match(t1, VoterChoice::kAll);
  std::sort(matches.begin(), matches.end());
  EXPECT_EQ(matches, (std::vector<uint32_t>{0, 1, 2, 4, 5}));
}

// Best matches for t1: the most specific ones — P(age|edu,inc) and
// P(age|nw=500K).
TEST(MrslTest, MatchBestKeepsMostSpecific) {
  Mrsl lattice = Fig2Lattice();
  Tuple t1({kMissingValue, 0, 0, 1});
  auto best = lattice.Match(t1, VoterChoice::kBest);
  std::sort(best.begin(), best.end());
  EXPECT_EQ(best, (std::vector<uint32_t>{4, 5}));
}

TEST(MrslTest, MatchWithNoEvidenceReturnsRoot) {
  Mrsl lattice = Fig2Lattice();
  Tuple t(4);  // everything missing
  auto matches = lattice.Match(t, VoterChoice::kAll);
  EXPECT_EQ(matches, (std::vector<uint32_t>{0}));
  auto best = lattice.Match(t, VoterChoice::kBest);
  EXPECT_EQ(best, (std::vector<uint32_t>{0}));
}

TEST(MrslTest, HeadAttributeValueIgnoredInMatching) {
  Mrsl lattice = Fig2Lattice();
  Tuple with_head({2, 0, 0, 1});  // age assigned; must not affect matching
  Tuple without_head({kMissingValue, 0, 0, 1});
  auto a = lattice.Match(with_head, VoterChoice::kAll);
  auto b = lattice.Match(without_head, VoterChoice::kAll);
  EXPECT_EQ(a, b);
}

TEST(MrslTest, EvidenceNotInAnyBodyMatchesRootOnly) {
  Mrsl lattice = Fig2Lattice();
  Tuple t({kMissingValue, 2, kMissingValue, kMissingValue});  // edu=MS
  auto matches = lattice.Match(t, VoterChoice::kAll);
  EXPECT_EQ(matches, (std::vector<uint32_t>{0}));
}

TEST(MrslTest, EmptyLattice) {
  Mrsl lattice(0, 4, 3, {});
  EXPECT_EQ(lattice.num_rules(), 0u);
  EXPECT_EQ(lattice.root(), -1);
  Tuple t({kMissingValue, 0, 0, 1});
  EXPECT_TRUE(lattice.Match(t, VoterChoice::kAll).empty());
}

TEST(MrslTest, ToStringListsRules) {
  auto schema = Schema::Create(
      {Attribute("age", {"20", "30", "40"}), Attribute("edu", {"HS", "BS"}),
       Attribute("inc", {"50K", "100K"}), Attribute("nw", {"100K", "500K"})});
  ASSERT_TRUE(schema.ok());
  Mrsl lattice = Fig2Lattice();
  std::string s = lattice.ToString(*schema);
  EXPECT_NE(s.find("P(age | edu=HS)"), std::string::npos);
  EXPECT_NE(s.find("w=0.410"), std::string::npos);
}

// ---- Differential test: indexed matcher == linear scan ----

class MrslMatchDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MrslMatchDifferentialTest, IndexAgreesWithLinearScan) {
  Rng rng(GetParam());
  constexpr size_t kAttrs = 6;
  constexpr size_t kHeadCard = 3;

  // Random rule set over attrs 1..5 (head attr 0), random bodies.
  std::vector<MetaRule> rules;
  rules.push_back(Rule({}, 1.0));  // ensure a root
  for (int i = 0; i < 60; ++i) {
    MetaRule r;
    r.head_attr = 0;
    r.body = Tuple(kAttrs);
    for (AttrId a = 1; a < kAttrs; ++a) {
      if (rng.Bernoulli(0.4)) {
        r.body.set_value(a, static_cast<ValueId>(rng.UniformInt(3)));
      }
    }
    r.weight = rng.NextDouble();
    r.cpd = Cpd(kHeadCard);
    rules.push_back(std::move(r));
  }
  Mrsl lattice(0, kAttrs, kHeadCard, std::move(rules));

  for (int trial = 0; trial < 200; ++trial) {
    Tuple evidence(kAttrs);
    for (AttrId a = 1; a < kAttrs; ++a) {
      if (rng.Bernoulli(0.6)) {
        evidence.set_value(a, static_cast<ValueId>(rng.UniformInt(3)));
      }
    }
    for (VoterChoice choice : {VoterChoice::kAll, VoterChoice::kBest}) {
      auto fast = lattice.Match(evidence, choice);
      auto slow = lattice.MatchLinearScan(evidence, choice);
      std::sort(fast.begin(), fast.end());
      std::sort(slow.begin(), slow.end());
      EXPECT_EQ(fast, slow);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrslMatchDifferentialTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace mrsl
