// Tests for exact inference: factor algebra, hand-computed posteriors,
// and a randomized differential test of variable elimination vs.
// brute-force enumeration.

#include "bn/exact.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mrsl {
namespace {

// A -> B with known CPTs: P(A=0)=0.3; P(B=0|A=0)=0.9, P(B=0|A=1)=0.2.
BayesNet SimpleNet() {
  auto topo = Topology::Create({"A", "B"}, {2, 2}, {{}, {0}});
  EXPECT_TRUE(topo.ok());
  auto bn = BayesNet::Create(std::move(topo).value(),
                             {{0.3, 0.7}, {0.9, 0.1, 0.2, 0.8}});
  EXPECT_TRUE(bn.ok());
  return std::move(bn).value();
}

TEST(FactorTest, FromCptShape) {
  BayesNet bn = SimpleNet();
  Factor f = Factor::FromCpt(bn, 1);
  EXPECT_EQ(f.vars(), (std::vector<AttrId>{0, 1}));
  EXPECT_EQ(f.values().size(), 4u);
}

TEST(FactorTest, RestrictFixesEvidence) {
  BayesNet bn = SimpleNet();
  Factor f = Factor::FromCpt(bn, 1);
  Tuple evidence({0, kMissingValue});
  Factor r = f.Restrict(evidence);
  EXPECT_EQ(r.vars(), (std::vector<AttrId>{1}));
  EXPECT_DOUBLE_EQ(r.value(0), 0.9);
  EXPECT_DOUBLE_EQ(r.value(1), 0.1);
}

TEST(FactorTest, MultiplyDisjointVars) {
  Factor a({0}, {2});
  a.set_value(0, 0.25);
  a.set_value(1, 0.75);
  Factor b({1}, {3});
  b.set_value(0, 0.5);
  b.set_value(1, 0.3);
  b.set_value(2, 0.2);
  Factor c = a.Multiply(b);
  EXPECT_EQ(c.vars(), (std::vector<AttrId>{0, 1}));
  EXPECT_DOUBLE_EQ(c.value(c.codec().Encode({1, 2})), 0.75 * 0.2);
}

TEST(FactorTest, SumOutMarginalizes) {
  BayesNet bn = SimpleNet();
  Factor joint = Factor::FromCpt(bn, 0).Multiply(Factor::FromCpt(bn, 1));
  Factor pb = joint.SumOut(0);
  EXPECT_EQ(pb.vars(), (std::vector<AttrId>{1}));
  EXPECT_NEAR(pb.value(0), 0.41, 1e-12);  // P(B=0)
  EXPECT_NEAR(pb.value(1), 0.59, 1e-12);
}

TEST(ExactTest, PosteriorByBayesRule) {
  BayesNet bn = SimpleNet();
  // P(A | B=0): P(A=0|B=0) = 0.27/0.41.
  Tuple evidence({kMissingValue, 0});
  for (auto* method : {&ExactConditionalVE, &ExactConditionalEnum}) {
    auto dist = (*method)(bn, evidence, {0});
    ASSERT_TRUE(dist.ok());
    EXPECT_NEAR(dist->prob(0), 0.27 / 0.41, 1e-12);
    EXPECT_NEAR(dist->prob(1), 0.14 / 0.41, 1e-12);
  }
}

TEST(ExactTest, PriorWithoutEvidence) {
  BayesNet bn = SimpleNet();
  Tuple no_evidence(2);
  auto dist = ExactConditionalVE(bn, no_evidence, {1});
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->prob(0), 0.41, 1e-12);
}

TEST(ExactTest, JointQueryOverBothVars) {
  BayesNet bn = SimpleNet();
  Tuple no_evidence(2);
  auto dist = ExactConditionalEnum(bn, no_evidence, {0, 1});
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->ProbOf({0, 0}), 0.27, 1e-12);
  EXPECT_NEAR(dist->ProbOf({1, 1}), 0.56, 1e-12);
  EXPECT_NEAR(dist->Sum(), 1.0, 1e-12);
}

TEST(ExactTest, RejectsEmptyQuery) {
  BayesNet bn = SimpleNet();
  EXPECT_FALSE(ExactConditionalVE(bn, Tuple(2), {}).ok());
}

TEST(ExactTest, RejectsQueryOverlappingEvidence) {
  BayesNet bn = SimpleNet();
  Tuple evidence({0, kMissingValue});
  EXPECT_FALSE(ExactConditionalVE(bn, evidence, {0}).ok());
}

TEST(ExactTest, IndependentNetworkPosteriorIgnoresEvidence) {
  Rng rng(3);
  BayesNet bn = BayesNet::RandomInstance(Topology::Independent(4, 3), &rng);
  Tuple no_evidence(4);
  auto prior = ExactConditionalVE(bn, no_evidence, {2});
  ASSERT_TRUE(prior.ok());
  Tuple evidence(4);
  evidence.set_value(0, 1);
  evidence.set_value(3, 2);
  auto post = ExactConditionalVE(bn, evidence, {2});
  ASSERT_TRUE(post.ok());
  for (ValueId v = 0; v < 3; ++v) {
    EXPECT_NEAR(prior->prob(v), post->prob(v), 1e-12);
  }
}

TEST(ExactTest, TrueDistributionCoversAllMissing) {
  BayesNet bn = SimpleNet();
  Tuple t(2);  // both missing
  auto dist = TrueDistribution(bn, t);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->vars(), (std::vector<AttrId>{0, 1}));
  EXPECT_NEAR(dist->Sum(), 1.0, 1e-12);
}

// ---- Randomized differential test: VE == enumeration ----

struct ExactDiffCase {
  uint64_t seed;
  size_t shape;  // 0 = chain, 1 = crown, 2 = layered
};

class ExactDifferentialTest
    : public ::testing::TestWithParam<ExactDiffCase> {};

TEST_P(ExactDifferentialTest, VeMatchesEnumeration) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Topology topo = param.shape == 0 ? Topology::Chain(6, 3)
                  : param.shape == 1
                      ? Topology::Crown(6, 2)
                      : Topology::Layered({2, 2, 2},
                                          std::vector<uint32_t>(6, 3), 2);
  BayesNet bn = BayesNet::RandomInstance(topo, &rng);

  for (int trial = 0; trial < 20; ++trial) {
    // Random evidence on a random subset, random query on the rest.
    Tuple evidence(6);
    std::vector<AttrId> unassigned;
    for (AttrId v = 0; v < 6; ++v) {
      if (rng.Bernoulli(0.4)) {
        evidence.set_value(
            v, static_cast<ValueId>(rng.UniformInt(topo.card(v))));
      } else {
        unassigned.push_back(v);
      }
    }
    if (unassigned.empty()) continue;
    rng.Shuffle(&unassigned);
    size_t q = 1 + rng.UniformInt(unassigned.size());
    std::vector<AttrId> query(unassigned.begin(),
                              unassigned.begin() + static_cast<long>(q));

    auto ve = ExactConditionalVE(bn, evidence, query);
    auto en = ExactConditionalEnum(bn, evidence, query);
    ASSERT_TRUE(ve.ok());
    ASSERT_TRUE(en.ok());
    ASSERT_EQ(ve->size(), en->size());
    for (uint64_t code = 0; code < ve->size(); ++code) {
      EXPECT_NEAR(ve->prob(code), en->prob(code), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExactDifferentialTest,
    ::testing::Values(ExactDiffCase{1, 0}, ExactDiffCase{2, 0},
                      ExactDiffCase{3, 1}, ExactDiffCase{4, 1},
                      ExactDiffCase{5, 2}, ExactDiffCase{6, 2}));

}  // namespace
}  // namespace mrsl
