// Kill -9 crash-recovery integration test. The fixture forks THIS
// binary as "--crash-child <dir>": a child process that derives (or
// restores) the deterministic store, attaches a group-commit WAL, and
// serves /update over loopback while checkpointing in a loop. The
// parent drives a concurrent /update commit storm from its own threads
// (so the acknowledgement ledger survives the kill), SIGKILLs the child
// at a random point mid-storm, then recovers snapshot + WAL in-process
// and asserts the durability contract: every HTTP-200-acked delta is
// present (max acked epoch <= recovered epoch) and the recovered store
// is bit-identical to a from-scratch re-derivation of its base.
//
// The harness defines its own main() so the child path never touches
// gtest; the linker leaves gtest_main's archive member out.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bn/bayes_net.h"
#include "core/learner.h"
#include "pdb/store.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "util/csv.h"
#include "util/fault_file.h"

namespace mrsl {

// Everything here carries external linkage (no anonymous namespace):
// main() below reaches RunCrashChild by qualified name, and each test
// suite is its own executable so nothing can collide.
namespace crash_harness {

Tuple T(std::vector<int> vals) {
  Tuple t(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    t.set_value(static_cast<AttrId>(i), vals[i]);
  }
  return t;
}

// The deterministic fixture shared by parent and child: both processes
// rebuild the exact same model, so the child can derive and the parent
// can recover without shipping state between them.
struct Fixture {
  BayesNet bn;
  Schema schema;
  MrslModel model;

  static Fixture Make() {
    Fixture f;
    Rng rng(77);
    f.bn = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
    Relation train = f.bn.SampleRelation(6000, &rng);
    f.schema = train.schema();
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(train, lo);
    if (!model.ok()) {
      std::fprintf(stderr, "fixture model: %s\n",
                   model.status().ToString().c_str());
      std::abort();
    }
    f.model = std::move(model).value();
    return f;
  }

  Relation BaseRelation() const {
    Relation rel(schema);
    (void)rel.Append(T({0, 1, 2, 0}));
    (void)rel.Append(T({0, 0, -1, -1}));
    (void)rel.Append(T({0, 0, 1, -1}));
    (void)rel.Append(T({1, 0, 2, 1}));
    (void)rel.Append(T({1, 1, -1, -1}));
    (void)rel.Append(T({2, 2, 0, -1}));
    (void)rel.Append(T({2, 2, -1, 0}));
    (void)rel.Append(T({2, 2, -1, -1}));
    (void)rel.Append(T({2, 0, 1, 1}));
    return rel;
  }

  StoreOptions SOpts() const {
    StoreOptions so;
    so.workload.gibbs.samples = 120;
    so.workload.gibbs.burn_in = 20;
    so.workload.gibbs.seed = 4242;
    return so;
  }

  // A complete-row insert (no inference work): the storm stresses the
  // group-commit/WAL path, not the sampler.
  std::string InsertDeltaCsv(int salt) const {
    std::string csv = "op,row";
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      csv += "," + schema.attr(a).name();
    }
    csv += "\ninsert,";
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      csv += "," + schema.attr(a).label((salt + a) % 2);
    }
    csv += "\n";
    return csv;
  }
};

void RemoveTree(const std::string& path) {
  if (DIR* d = ::opendir(path.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      RemoveTree(path + "/" + name);
    }
    ::closedir(d);
    ::rmdir(path.c_str());
  } else {
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------
// Child: serve /update with a group-commit WAL until killed.

int RunCrashChild(const std::string& work_dir) {
  Fixture f = Fixture::Make();
  Engine engine(&f.model);
  BidStore store(&engine, f.SOpts());
  const std::string snap_path = work_dir + "/store.bin";

  struct stat st;
  if (::stat(snap_path.c_str(), &st) == 0) {
    Status restored = store.Restore(snap_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "child restore: %s\n",
                   restored.ToString().c_str());
      return 3;
    }
  } else {
    auto committed = store.Commit(f.BaseRelation());
    if (!committed.ok()) {
      std::fprintf(stderr, "child commit: %s\n",
                   committed.status().ToString().c_str());
      return 3;
    }
    Status saved = store.SaveSnapshot(snap_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "child save: %s\n", saved.ToString().c_str());
      return 3;
    }
  }
  auto wal = store.OpenWal(work_dir + "/wal", WalSyncMode::kGroup);
  if (!wal.ok()) {
    std::fprintf(stderr, "child wal: %s\n",
                 wal.status().ToString().c_str());
    return 3;
  }

  HttpServer server;  // port 0: kernel-assigned
  StoreService service(&store);
  service.Attach(&server);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "child serve: %s\n", started.ToString().c_str());
    return 3;
  }
  // Publish the port atomically — the parent polls for this file.
  Status port_written = AtomicWriteFile(work_dir + "/port",
                                        std::to_string(server.port()));
  if (!port_written.ok()) {
    std::fprintf(stderr, "child port file: %s\n",
                 port_written.ToString().c_str());
    return 3;
  }

  // Checkpoint continuously so the kill also lands inside atomic
  // snapshot saves and WAL compactions, not just inside appends.
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Status ck = store.Checkpoint(snap_path);
    if (!ck.ok()) {
      std::fprintf(stderr, "child checkpoint: %s\n", ck.ToString().c_str());
      return 3;
    }
  }
}

// ---------------------------------------------------------------------
// Parent: storm, kill, recover, verify.

class ServerCrashTest : public ::testing::Test {
 protected:
  static void ExpectBitIdentical(const ProbDatabase& a,
                                 const ProbDatabase& b) {
    ASSERT_EQ(a.num_blocks(), b.num_blocks());
    for (size_t i = 0; i < a.num_blocks(); ++i) {
      const Block& ba = a.block(i);
      const Block& bb = b.block(i);
      ASSERT_EQ(ba.alternatives.size(), bb.alternatives.size())
          << "block " << i;
      for (size_t j = 0; j < ba.alternatives.size(); ++j) {
        EXPECT_EQ(ba.alternatives[j].tuple, bb.alternatives[j].tuple)
            << "block " << i << " alt " << j;
        EXPECT_EQ(ba.alternatives[j].prob, bb.alternatives[j].prob)
            << "block " << i << " alt " << j;
      }
    }
  }

  // Polls for the child's port file; 0 on timeout.
  static uint16_t WaitForPort(const std::string& work_dir, pid_t child) {
    for (int tries = 0; tries < 600; ++tries) {
      auto text = ReadFile(work_dir + "/port");
      if (text.ok() && !text->empty()) {
        return static_cast<uint16_t>(std::atoi(text->c_str()));
      }
      int status = 0;
      if (::waitpid(child, &status, WNOHANG) == child) return 0;  // died
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return 0;
  }
};

TEST_F(ServerCrashTest, NoAckedDeltaIsLostAcrossKillNine) {
  Fixture f = Fixture::Make();
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  ASSERT_GT(n, 0);
  exe[n] = '\0';

  constexpr int kIterations = 3;
  constexpr int kClients = 4;
  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const std::string work_dir =
        ::testing::TempDir() + "/crash_" + std::to_string(iter);
    RemoveTree(work_dir);
    ASSERT_EQ(::mkdir(work_dir.c_str(), 0755), 0);

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ::execl(exe, exe, "--crash-child", work_dir.c_str(),
              static_cast<char*>(nullptr));
      std::fprintf(stderr, "exec failed: %s\n", std::strerror(errno));
      ::_exit(127);
    }
    const uint16_t port = WaitForPort(work_dir, child);
    ASSERT_NE(port, 0) << "child never came up";

    // The commit storm. Acked epochs are tracked HERE, in the process
    // that survives — an HTTP 200 is the durability promise under test.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> max_acked{0};
    std::atomic<uint64_t> acks{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c]() {
        HttpClient client;
        if (!client.Connect("127.0.0.1", port).ok()) return;
        const std::string csv = f.InsertDeltaCsv(c);
        while (!stop.load(std::memory_order_relaxed)) {
          auto resp = client.RoundTrip("POST", "/update", csv, "text/csv");
          if (!resp.ok()) return;  // the kill severed the connection
          if (resp->status != 200) continue;
          const uint64_t epoch = static_cast<uint64_t>(
              std::atoll(resp->Header("x-mrsl-epoch", "0").c_str()));
          uint64_t seen = max_acked.load();
          while (epoch > seen &&
                 !max_acked.compare_exchange_weak(seen, epoch)) {
          }
          acks.fetch_add(1);
        }
      });
    }

    // Let the storm build, then kill at a random point inside it.
    for (int tries = 0; tries < 600 && acks.load() < 5; ++tries) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GE(acks.load(), 5u) << "storm never got going";
    std::mt19937 rng(1234 + iter);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(30 + rng() % 300));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child exited on its own with status " << status;
    stop.store(true);
    for (auto& t : clients) t.join();

    // Recover from whatever the kill left behind.
    Engine engine(&f.model);
    BidStore recovered(&engine, StoreOptions());
    ASSERT_TRUE(recovered.Restore(work_dir + "/store.bin").ok());
    auto rec = recovered.OpenWal(work_dir + "/wal", WalSyncMode::kNone);
    ASSERT_TRUE(rec.ok()) << rec.status();

    // The contract: nothing the client was told "200" about is gone.
    EXPECT_GE(recovered.epoch(), max_acked.load())
        << "acked epochs lost (recovered " << recovered.epoch()
        << ", acked through " << max_acked.load() << ", replayed "
        << rec->replayed_records << ", skipped " << rec->skipped_records
        << ", torn_tail " << rec->torn_tail << ")";

    // ... and the recovered state equals a from-scratch derivation of
    // the recovered base relation, bit for bit.
    Engine fresh_engine(&f.model);
    BidStore fresh(&fresh_engine, f.SOpts());
    ASSERT_TRUE(fresh.Commit(recovered.snapshot()->base()).ok());
    ExpectBitIdentical(fresh.snapshot()->database(),
                       recovered.snapshot()->database());

    RemoveTree(work_dir);
  }
}

}  // namespace crash_harness
}  // namespace mrsl

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--crash-child") == 0) {
    return mrsl::crash_harness::RunCrashChild(argv[2]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
