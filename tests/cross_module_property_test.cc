// Cross-module property sweeps: invariants that tie the pipeline stages
// together, checked over randomized inputs.
//
//  1. The learned root meta-rule equals the empirical marginal.
//  2. Learning is invariant to row order.
//  3. Gibbs over a single missing attribute agrees with Algorithm 2
//     (the sampler's stationary distribution IS the voted conditional).
//  4. A derived ProbDatabase preserves observed cells: selections on
//     observed attributes count exactly like the incomplete relation.
//  5. Masking then repairing with a perfect (low-noise) generator
//     recovers most cells; repairs never alter observed cells.
//  6. The indexed matcher agrees with the linear-scan oracle.
//  7. Differential testing of the extensional plan algebra: on random
//     BID databases and random plans, exact (safe) results fall inside
//     the Monte-Carlo oracle's confidence band, and dissociation
//     [lower, upper] bounds always bracket the oracle estimate.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bn/bayes_net.h"
#include "core/gibbs.h"
#include "oracle_harness.h"
#include "pdb/compiler.h"
#include "core/learner.h"
#include "core/workload.h"
#include "expfw/metrics.h"
#include "pdb/plan.h"
#include "pdb/query.h"
#include "util/thread_pool.h"
#include "util/rng.h"

namespace mrsl {
namespace {

LearnOptions LOpts(double theta) {
  LearnOptions o;
  o.support_threshold = theta;
  return o;
}

class PipelinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinePropertyTest, RootCpdEqualsEmpiricalMarginal) {
  Rng rng(GetParam());
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
  Relation rel = bn.SampleRelation(3000, &rng);
  auto model = LearnModel(rel, LOpts(0.001));
  ASSERT_TRUE(model.ok());

  for (AttrId a = 0; a < 4; ++a) {
    const Mrsl& lattice = model->mrsl(a);
    ASSERT_GE(lattice.root(), 0);
    const Cpd& root = lattice.rule(static_cast<size_t>(lattice.root())).cpd;
    // Empirical marginal over the complete rows.
    std::vector<double> counts(3, 0.0);
    for (const Tuple& t : rel.rows()) {
      counts[static_cast<size_t>(t.value(a))] += 1.0;
    }
    for (ValueId v = 0; v < 3; ++v) {
      EXPECT_NEAR(root.prob(v), counts[static_cast<size_t>(v)] / 3000.0,
                  1e-3)
          << "attr " << a << " value " << v;
    }
  }
}

TEST_P(PipelinePropertyTest, LearningInvariantToRowOrder) {
  Rng rng(GetParam() + 100);
  BayesNet bn = BayesNet::RandomInstance(Topology::Chain(4, 2), &rng);
  Relation rel = bn.SampleRelation(800, &rng);

  Relation shuffled(rel.schema());
  std::vector<uint32_t> order(rel.num_rows());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  rng.Shuffle(&order);
  for (uint32_t i : order) {
    ASSERT_TRUE(shuffled.Append(rel.row(i)).ok());
  }

  auto m1 = LearnModel(rel, LOpts(0.01));
  auto m2 = LearnModel(shuffled, LOpts(0.01));
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_EQ(m1->TotalMetaRules(), m2->TotalMetaRules());
  // Rule sets are identical up to order; compare via sorted dumps of
  // (body, cpd) pairs.
  for (AttrId a = 0; a < 4; ++a) {
    auto fingerprint = [&](const Mrsl& lattice) {
      std::vector<std::pair<std::vector<ValueId>, std::vector<double>>> fp;
      for (size_t i = 0; i < lattice.num_rules(); ++i) {
        fp.emplace_back(lattice.rule(i).body.values(),
                        lattice.rule(i).cpd.probs());
      }
      std::sort(fp.begin(), fp.end());
      return fp;
    };
    EXPECT_EQ(fingerprint(m1->mrsl(a)), fingerprint(m2->mrsl(a)));
  }
}

TEST_P(PipelinePropertyTest, GibbsMarginalMatchesAlgorithm2) {
  // With exactly one missing attribute there is nothing to cycle over:
  // every Gibbs draw samples directly from the Algorithm 2 estimate, so
  // the empirical distribution must converge to it.
  Rng rng(GetParam() + 200);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation rel = bn.SampleRelation(5000, &rng);
  auto model = LearnModel(rel, LOpts(0.005));
  ASSERT_TRUE(model.ok());

  for (int trial = 0; trial < 5; ++trial) {
    Tuple t = bn.ForwardSample(&rng);
    AttrId missing = static_cast<AttrId>(rng.UniformInt(4));
    t.set_value(missing, kMissingValue);

    auto direct = InferSingleAttribute(*model, t, missing, VotingOptions());
    ASSERT_TRUE(direct.ok());

    GibbsOptions gopts;
    gopts.samples = 40000;
    gopts.burn_in = 10;
    gopts.seed = GetParam() * 31 + static_cast<uint64_t>(trial);
    GibbsSampler sampler(&*model, gopts);
    auto sampled = sampler.Infer(t);
    ASSERT_TRUE(sampled.ok());

    for (ValueId v = 0; v < 2; ++v) {
      EXPECT_NEAR(sampled->prob(v), direct->prob(v), 0.02);
    }
  }
}

TEST_P(PipelinePropertyTest, DerivedDatabasePreservesObservedCells) {
  Rng rng(GetParam() + 300);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation full = bn.SampleRelation(2000, &rng);
  Relation rel(full.schema());
  for (size_t i = 0; i < 120; ++i) {
    Tuple t = full.row(i);
    if (rng.Bernoulli(0.5)) {
      t.set_value(static_cast<AttrId>(rng.UniformInt(4)), kMissingValue);
    }
    ASSERT_TRUE(rel.Append(std::move(t)).ok());
  }
  auto model = LearnModel(full, LOpts(0.005));
  ASSERT_TRUE(model.ok());

  std::vector<Tuple> workload;
  for (uint32_t r : rel.IncompleteRowIndices()) {
    workload.push_back(rel.row(r));
  }
  WorkloadOptions wl;
  wl.gibbs.samples = 300;
  wl.gibbs.burn_in = 30;
  auto dists = RunWorkload(*model, workload, SamplingMode::kTupleDag, wl);
  ASSERT_TRUE(dists.ok());
  auto db = ProbDatabase::FromInference(rel, *dists);
  ASSERT_TRUE(db.ok());

  // Every alternative of block i extends row i; therefore a selection on
  // an observed value has per-block probability exactly 0 or 1, and the
  // expected count restricted to rows observing the attribute matches a
  // deterministic count.
  for (AttrId a = 0; a < 4; ++a) {
    for (ValueId v = 0; v < 2; ++v) {
      double expected_from_observed = 0.0;
      for (size_t i = 0; i < rel.num_rows(); ++i) {
        const Block& block = db->block(i);
        if (rel.row(i).value(a) == kMissingValue) continue;
        double q = 0.0;
        for (const Alternative& alt : block.alternatives) {
          if (alt.tuple.value(a) == v) q += alt.prob;
        }
        EXPECT_NEAR(q, rel.row(i).value(a) == v ? 1.0 : 0.0, 1e-9);
        expected_from_observed += q;
      }
      size_t det_count = 0;
      for (const Tuple& t : rel.rows()) det_count += t.value(a) == v;
      EXPECT_NEAR(expected_from_observed, static_cast<double>(det_count),
                  1e-6);
    }
  }
}

// 6. The indexed matcher agrees with the naive linear-scan oracle on
//    randomized evidence tuples, for both voter choices. (Matching is
//    the hot path every inference mode funnels through; the inverted
//    index must be a pure optimization.)
TEST_P(PipelinePropertyTest, IndexedMatchAgreesWithLinearScan) {
  Rng rng(GetParam() ^ 0xA11CE);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(5, 3), &rng);
  Relation rel = bn.SampleRelation(6000, &rng);
  auto model = LearnModel(rel, LOpts(0.002));
  ASSERT_TRUE(model.ok());

  for (size_t probe = 0; probe < 200; ++probe) {
    // Random evidence: each cell independently missing or a random value
    // (not necessarily one the generator would produce).
    Tuple t(5);
    for (AttrId a = 0; a < 5; ++a) {
      if (rng.Bernoulli(0.35)) continue;  // leave missing
      t.set_value(a, static_cast<ValueId>(rng.UniformInt(3)));
    }
    for (AttrId head = 0; head < 5; ++head) {
      const Mrsl& lattice = model->mrsl(head);
      for (VoterChoice choice : {VoterChoice::kAll, VoterChoice::kBest}) {
        auto indexed = lattice.Match(t, choice);
        auto oracle = lattice.MatchLinearScan(t, choice);
        std::sort(indexed.begin(), indexed.end());
        std::sort(oracle.begin(), oracle.end());
        EXPECT_EQ(indexed, oracle)
            << "probe " << probe << " head " << head << " choice "
            << VoterChoiceName(choice);
      }
    }
  }
}

// --- 7. Plan algebra vs. the possible-world oracle -----------------------

namespace plan_diff {

using oracle_harness::RandomBid;
using oracle_harness::RandomPlan;
using oracle_harness::RandomPred;
using oracle_harness::ThreeAttrSchema;

// Verifies one plan against the 20k-world oracle: exact marginals and
// aggregates within the Monte-Carlo confidence band, intervals always
// bracketing the oracle estimate.
void CheckPlanAgainstOracle(const PlanNode& plan,
                            const std::vector<const ProbDatabase*>& sources,
                            uint64_t seed) {
  auto result = EvaluatePlan(plan, sources);
  ASSERT_TRUE(result.ok());
  auto exists = EvaluateExists(plan, sources);
  auto count = EvaluateCount(plan, sources);
  ASSERT_TRUE(exists.ok());
  ASSERT_TRUE(count.ok());

  OracleOptions oo;
  oo.trials = 20000;
  oo.seed = seed;
  auto oracle = MonteCarloPlanOracle(plan, sources, oo);
  ASSERT_TRUE(oracle.ok());

  // At 20k trials the binomial standard error is <= 0.0035; 0.02 is a
  // ~5.7 sigma band.
  const double tol = 0.02;
  std::map<std::vector<ValueId>, double> freq;
  for (const ProbTuple& pt : oracle->marginals) {
    freq[pt.tuple.values()] = pt.prob;
  }
  auto marginals = DistinctMarginals(*result, sources);
  std::map<std::vector<ValueId>, ProbInterval> extensional;
  for (const DistinctMarginal& m : marginals) {
    extensional[m.tuple.values()] = m.prob;
  }
  // The oracle can only produce tuples the extensional result predicts.
  for (const auto& [values, f] : freq) {
    ASSERT_TRUE(extensional.count(values) != 0u)
        << "oracle tuple missing extensionally (freq " << f << ")";
  }
  for (const DistinctMarginal& m : marginals) {
    auto it = freq.find(m.tuple.values());
    double f = it == freq.end() ? 0.0 : it->second;
    if (m.prob.exact()) {
      EXPECT_NEAR(m.prob.lo, f, tol);
    } else {
      EXPECT_LE(m.prob.lo - tol, f);
      EXPECT_GE(m.prob.hi + tol, f);
    }
  }

  if (exists->prob.exact()) {
    EXPECT_NEAR(exists->prob.lo, oracle->exists, tol);
  } else {
    EXPECT_LE(exists->prob.lo - tol, oracle->exists);
    EXPECT_GE(exists->prob.hi + tol, oracle->exists);
  }

  // Count means have a larger spread than frequencies; scale the band.
  const double count_tol =
      0.05 * std::max(1.0, count->expected.hi - count->expected.lo + 1.0) +
      0.05 * std::max(1.0, count->expected.hi);
  if (count->expected.exact()) {
    EXPECT_NEAR(count->expected.lo, oracle->expected_count, count_tol);
  } else {
    EXPECT_LE(count->expected.lo - count_tol, oracle->expected_count);
    EXPECT_GE(count->expected.hi + count_tol, oracle->expected_count);
  }
  if (count->has_distribution) {
    for (size_t k = 0; k < count->distribution.size(); ++k) {
      double got = k < oracle->count_distribution.size()
                       ? oracle->count_distribution[k]
                       : 0.0;
      EXPECT_NEAR(count->distribution[k], got, tol) << "count=" << k;
    }
  }
}

// Exact (bitwise, for doubles) equality of the two evaluators' outputs
// on one plan — the columnar executor's bit-identity contract. The
// serving layer byte-compares rendered query bodies across evaluators,
// so EXPECT_NEAR is not enough here.
void ExpectRowColumnarIdentical(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources) {
  auto col = EvaluatePlan(plan, sources);
  auto row = EvaluatePlanRowwise(plan, sources);
  ASSERT_TRUE(col.ok());
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(col->rows.size(), row->rows.size());
  EXPECT_EQ(col->safe, row->safe);
  ASSERT_EQ(col->schema.num_attrs(), row->schema.num_attrs());
  for (size_t r = 0; r < col->rows.size(); ++r) {
    const PlanRow& cr = col->rows[r];
    const PlanRow& rr = row->rows[r];
    ASSERT_EQ(cr.tuple.values(), rr.tuple.values()) << "row " << r;
    EXPECT_EQ(cr.prob.lo, rr.prob.lo) << "row " << r;
    EXPECT_EQ(cr.prob.hi, rr.prob.hi) << "row " << r;
    EXPECT_EQ(cr.lineage.blocks, rr.lineage.blocks) << "row " << r;
    ASSERT_EQ(cr.lineage.simple, rr.lineage.simple) << "row " << r;
    if (cr.lineage.simple) {
      EXPECT_EQ(cr.lineage.source, rr.lineage.source) << "row " << r;
      EXPECT_EQ(cr.lineage.block, rr.lineage.block) << "row " << r;
      EXPECT_EQ(cr.lineage.alts, rr.lineage.alts) << "row " << r;
    }
  }

  // Identical rows and lineage must flow through to identical
  // aggregates — the store's combine stage runs on either result.
  auto cm = DistinctMarginals(*col, sources);
  auto rm = DistinctMarginals(*row, sources);
  ASSERT_EQ(cm.size(), rm.size());
  for (size_t i = 0; i < cm.size(); ++i) {
    EXPECT_EQ(cm[i].tuple.values(), rm[i].tuple.values());
    EXPECT_EQ(cm[i].prob.lo, rm[i].prob.lo);
    EXPECT_EQ(cm[i].prob.hi, rm[i].prob.hi);
  }
  ExistsResult ce = ExistsFromResult(*col, sources);
  ExistsResult re = ExistsFromResult(*row, sources);
  EXPECT_EQ(ce.prob.lo, re.prob.lo);
  EXPECT_EQ(ce.prob.hi, re.prob.hi);
  EXPECT_EQ(ce.safe, re.safe);
  CountResult cc = CountFromResult(*col, sources);
  CountResult rc = CountFromResult(*row, sources);
  EXPECT_EQ(cc.expected.lo, rc.expected.lo);
  EXPECT_EQ(cc.expected.hi, rc.expected.hi);
  EXPECT_EQ(cc.safe, rc.safe);
  ASSERT_EQ(cc.has_distribution, rc.has_distribution);
  EXPECT_EQ(cc.distribution, rc.distribution);
}

}  // namespace plan_diff

// The columnar production evaluator against the row-at-a-time
// reference: randomized plans covering every operator shape (scans,
// selects, joins including correlated self-joins, projects), checked
// for EXACT equality — rows, doubles, lineage, marginals, aggregates —
// under 1, 2, and 8 concurrent evaluations (both evaluators are pure
// functions; concurrency must not perturb a single bit).
TEST_P(PipelinePropertyTest, ColumnarEvaluatorMatchesRowReferenceExactly) {
  using namespace plan_diff;
  Rng rng(GetParam() ^ 0x600DCAFEULL);
  Schema schema = ThreeAttrSchema();
  ProbDatabase db1 = RandomBid(schema, &rng);
  ProbDatabase db2 = RandomBid(schema, &rng);
  std::vector<const ProbDatabase*> sources = {&db1, &db2};

  std::vector<PlanPtr> plans;
  for (int trial = 0; trial < 12; ++trial) {
    size_t arity = 0;
    plans.push_back(RandomPlan(sources, &rng, &arity));
  }
  // The canonical correlated shape (projects away a self-join's key)
  // and a plain safe select, so both lineage regimes are always in the
  // sweep regardless of what RandomPlan drew.
  plans.push_back(ProjectPlan({2}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0)));
  plans.push_back(SelectPlan(Predicate::Eq(0, 0), ScanPlan(1)));

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    pool.ParallelFor(plans.size(), threads, [&](size_t i) {
      ExpectRowColumnarIdentical(*plans[i], sources);
    });
  }
}

TEST_P(PipelinePropertyTest, PlanAlgebraMatchesPossibleWorldOracle) {
  using namespace plan_diff;
  Rng rng(GetParam() ^ 0x91A4F00DULL);
  Schema schema = ThreeAttrSchema();
  ProbDatabase db1 = RandomBid(schema, &rng);
  ProbDatabase db2 = RandomBid(schema, &rng);
  std::vector<const ProbDatabase*> sources = {&db1, &db2};

  size_t unsafe_seen = 0;
  for (int trial = 0; trial < 6; ++trial) {
    size_t arity = 0;
    PlanPtr plan = RandomPlan(sources, &rng, &arity);
    auto result = EvaluatePlan(*plan, sources);
    ASSERT_TRUE(result.ok());
    unsafe_seen += result->safe ? 0 : 1;
    CheckPlanAgainstOracle(*plan, sources,
                           GetParam() * 101 + static_cast<uint64_t>(trial));
  }

  // The canonical unsafe shape — projecting away the join attribute of
  // a self-join — must dissociate, and its bounds must bracket the
  // oracle (the acceptance criterion's randomized unsafe-plan trial).
  PlanPtr unsafe = ProjectPlan(
      {2}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));
  auto unsafe_result = EvaluatePlan(*unsafe, sources);
  ASSERT_TRUE(unsafe_result.ok());
  EXPECT_FALSE(unsafe_result->safe);
  CheckPlanAgainstOracle(*unsafe, sources, GetParam() * 777);
}

// 8. Monotone improvement of the safe-plan compiler: on every generated
//    plan, the lattice-searched envelope is NESTED inside the fixed-
//    first-operand dissociation interval EvaluatePlan reports — the
//    compiled upper bound never exceeds the current dissociation upper
//    bound, and the compiled lower bound never undercuts it. A compiled
//    marginal may be missing entirely only when the compiler proved the
//    tuple impossible, which the baseline interval must allow (lo == 0).
TEST_P(PipelinePropertyTest, CompiledBoundsNeverWorseThanFixedDissociation) {
  using namespace plan_diff;
  Rng rng(GetParam() ^ 0xC0117EDULL);
  Schema schema = ThreeAttrSchema();
  ProbDatabase db1 = RandomBid(schema, &rng);
  ProbDatabase db2 = RandomBid(schema, &rng);
  std::vector<const ProbDatabase*> sources = {&db1, &db2};

  std::vector<PlanPtr> plans;
  for (int trial = 0; trial < 10; ++trial) {
    size_t arity = 0;
    plans.push_back(RandomPlan(sources, &rng, &arity));
  }
  // The canonical correlated shapes, always in the sweep.
  plans.push_back(ProjectPlan({2}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0)));
  plans.push_back(ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(1), 0, 1)));

  const double eps = 1e-9;
  for (size_t pi = 0; pi < plans.size(); ++pi) {
    const PlanNode& plan = *plans[pi];
    auto baseline = EvaluatePlan(plan, sources);
    ASSERT_TRUE(baseline.ok()) << "plan " << pi;
    auto base_marginals = DistinctMarginals(*baseline, sources);
    auto base_exists = ExistsFromResult(*baseline, sources);

    auto compiled = CompileQuery(plan, sources);
    ASSERT_TRUE(compiled.ok()) << "plan " << pi;
    EXPECT_EQ(compiled->stats.plan_safe, baseline->safe) << "plan " << pi;

    std::map<std::vector<ValueId>, ProbInterval> base;
    for (const DistinctMarginal& m : base_marginals) {
      base[m.tuple.values()] = m.prob;
    }
    std::map<std::vector<ValueId>, ProbInterval> mine;
    for (const DistinctMarginal& m : compiled->marginals) {
      mine[m.tuple.values()] = m.prob;
    }
    for (const auto& [values, prob] : mine) {
      auto it = base.find(values);
      ASSERT_TRUE(it != base.end())
          << "plan " << pi << ": compiled tuple unknown to baseline";
      EXPECT_GE(prob.lo, it->second.lo - eps) << "plan " << pi;
      EXPECT_LE(prob.hi, it->second.hi + eps) << "plan " << pi;
    }
    for (const auto& [values, prob] : base) {
      if (mine.count(values) != 0u) continue;
      // Dropped as impossible: the baseline bound must have allowed 0.
      EXPECT_LE(prob.lo, eps) << "plan " << pi;
    }

    EXPECT_GE(compiled->exists.prob.lo, base_exists.prob.lo - eps)
        << "plan " << pi;
    EXPECT_LE(compiled->exists.prob.hi, base_exists.prob.hi + eps)
        << "plan " << pi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace mrsl
