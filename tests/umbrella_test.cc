// Compile-and-smoke test for the umbrella header: every public symbol is
// reachable through "mrsl.h", and a miniature end-to-end run works using
// only that include.

#include "mrsl.h"

#include <string>

#include <gtest/gtest.h>

namespace mrsl {
namespace {

TEST(UmbrellaTest, VersionMacros) {
  EXPECT_EQ(MRSL_VERSION_MAJOR, 1);
  EXPECT_STREQ(MRSL_VERSION_STRING, "1.9.0");
  // The string macro must stay in sync with the numeric components.
  const std::string composed = std::to_string(MRSL_VERSION_MAJOR) + "." +
                               std::to_string(MRSL_VERSION_MINOR) + "." +
                               std::to_string(MRSL_VERSION_PATCH);
  EXPECT_EQ(composed, MRSL_VERSION_STRING);
}

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  // Generate.
  Rng rng(1);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation rel = bn.SampleRelation(2000, &rng);
  Tuple broken = rel.row(0);
  broken.set_value(1, kMissingValue);
  broken.set_value(2, kMissingValue);
  ASSERT_TRUE(rel.Append(broken).ok());

  // Learn.
  LearnOptions learn;
  learn.support_threshold = 0.01;
  auto model = LearnModel(rel, learn);
  ASSERT_TRUE(model.ok());

  // Infer.
  WorkloadOptions wl;
  wl.gibbs.samples = 200;
  wl.gibbs.burn_in = 20;
  auto dists = RunWorkload(*model, {broken}, SamplingMode::kTupleDag, wl);
  ASSERT_TRUE(dists.ok());
  EXPECT_NEAR((*dists)[0].Sum(), 1.0, 1e-9);

  // Derive + query.
  Relation just_broken(rel.schema());
  ASSERT_TRUE(just_broken.Append(broken).ok());
  auto db = ProbDatabase::FromInference(just_broken, *dists);
  ASSERT_TRUE(db.ok());
  double p = ProbExists(*db, Predicate::Eq(0, broken.value(0)));
  EXPECT_NEAR(p, 1.0, 1e-9);  // observed cell is certain
}

TEST(UmbrellaTest, ModelIoAndRepairThroughSingleInclude) {
  // The offline-learning workflow (Sec VI-B): learn, serialize, reload,
  // then repair with the reloaded model — all through "mrsl.h".
  Rng rng(7);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation rel = bn.SampleRelation(1500, &rng);

  LearnOptions learn;
  learn.support_threshold = 0.01;
  auto model = LearnModel(rel, learn);
  ASSERT_TRUE(model.ok());

  const std::string text = ModelToText(*model);
  auto reloaded = ModelFromText(text);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(ModelToText(*reloaded), text);  // serialization round-trips

  Relation dirty(rel.schema());
  Tuple broken = rel.row(0);
  broken.set_value(1, kMissingValue);
  ASSERT_TRUE(dirty.Append(broken).ok());

  RepairOptions repair;
  repair.workload.gibbs.samples = 200;
  repair.workload.gibbs.burn_in = 20;
  RepairStats stats;
  auto repaired = RepairRelation(*reloaded, dirty, repair, &stats);
  ASSERT_TRUE(repaired.ok());
  ASSERT_EQ(repaired->num_rows(), 1u);
  EXPECT_EQ(stats.repaired, 1u);
  EXPECT_TRUE(repaired->row(0).IsComplete());
}

}  // namespace
}  // namespace mrsl
