// Compile-and-smoke test for the umbrella header: every public symbol is
// reachable through "mrsl.h", and a miniature end-to-end run works using
// only that include.

#include "mrsl.h"

#include <gtest/gtest.h>

namespace mrsl {
namespace {

TEST(UmbrellaTest, VersionMacros) {
  EXPECT_EQ(MRSL_VERSION_MAJOR, 1);
  EXPECT_STREQ(MRSL_VERSION_STRING, "1.0.0");
}

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  // Generate.
  Rng rng(1);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation rel = bn.SampleRelation(2000, &rng);
  Tuple broken = rel.row(0);
  broken.set_value(1, kMissingValue);
  broken.set_value(2, kMissingValue);
  ASSERT_TRUE(rel.Append(broken).ok());

  // Learn.
  LearnOptions learn;
  learn.support_threshold = 0.01;
  auto model = LearnModel(rel, learn);
  ASSERT_TRUE(model.ok());

  // Infer.
  WorkloadOptions wl;
  wl.gibbs.samples = 200;
  wl.gibbs.burn_in = 20;
  auto dists = RunWorkload(*model, {broken}, SamplingMode::kTupleDag, wl);
  ASSERT_TRUE(dists.ok());
  EXPECT_NEAR((*dists)[0].Sum(), 1.0, 1e-9);

  // Derive + query.
  Relation just_broken(rel.schema());
  ASSERT_TRUE(just_broken.Append(broken).ok());
  auto db = ProbDatabase::FromInference(just_broken, *dists);
  ASSERT_TRUE(db.ok());
  double p = ProbExists(*db, Predicate::Eq(0, broken.value(0)));
  EXPECT_NEAR(p, 1.0, 1e-9);  // observed cell is certain
}

}  // namespace
}  // namespace mrsl
