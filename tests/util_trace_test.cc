// Tests for the tracing subsystem: span-tree structure, the inert
// fast path, thread-safe child creation, the TraceStore ring buffer
// (wraparound order), deterministic sampling, and the JSON exporters.

#include "util/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace mrsl {
namespace {

TEST(TraceSpanTest, DefaultSpanIsInertEverywhere) {
  // The tracing-off fast path: every operation on a default span is a
  // no-op (and must not crash) — instrumented call sites rely on it.
  TraceSpan span;
  EXPECT_FALSE(span.active());
  span.SetAttr("rows", int64_t{42});
  span.SetAttr("cache", std::string("hit"));
  span.End();
  TraceSpan child = span.StartChild("child");
  EXPECT_FALSE(child.active());
  child.End();
}

TEST(TraceContextTest, BuildsAParentIndexedSpanTree) {
  TraceContext ctx(0x1234, "POST /query");
  TraceSpan root = ctx.root();
  EXPECT_TRUE(root.active());

  TraceSpan query = root.StartChild("query");
  TraceSpan parse = query.StartChild("parse");
  parse.SetAttr("bytes", int64_t{17});
  parse.End();
  TraceSpan eval = query.StartChild("evaluate");
  eval.SetAttr("rows", int64_t{9});
  eval.End();
  query.End();
  root.End();

  const std::vector<TraceSpanData> spans = ctx.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "POST /query");
  EXPECT_EQ(spans[0].parent, TraceContext::kNoParent);
  EXPECT_EQ(spans[1].name, "query");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "parse");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[3].name, "evaluate");
  EXPECT_EQ(spans[3].parent, 1u);
  // Every ended span has a non-zero duration; children start no
  // earlier than their parent.
  for (const TraceSpanData& s : spans) EXPECT_GT(s.duration_ns, 0u);
  EXPECT_GE(spans[2].start_ns, spans[1].start_ns);
  ASSERT_EQ(spans[2].int_attrs.size(), 1u);
  EXPECT_EQ(spans[2].int_attrs[0].first, "bytes");
  EXPECT_EQ(spans[2].int_attrs[0].second, 17);
}

TEST(TraceContextTest, FirstEndWins) {
  TraceContext ctx(1, "t");
  TraceSpan span = ctx.root().StartChild("x");
  span.End();
  const uint64_t first = ctx.Snapshot()[1].duration_ns;
  span.End();  // idempotent: a second End must not restamp
  EXPECT_EQ(ctx.Snapshot()[1].duration_ns, first);
}

TEST(TraceContextTest, ConcurrentChildrenAttachSafely) {
  // The engine's per-component fan-out: many pool threads attach spans
  // to one trace concurrently.
  TraceContext ctx(7, "infer");
  TraceSpan parent = ctx.root().StartChild("batch");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span = parent.StartChild("component");
        span.SetAttr("i", int64_t{i});
        span.End();
      }
    });
  }
  for (auto& t : threads) t.join();
  parent.End();
  const std::vector<TraceSpanData> spans = ctx.Snapshot();
  // root + batch + kThreads * kPerThread components.
  ASSERT_EQ(spans.size(), 2u + kThreads * kPerThread);
  size_t components = 0;
  for (const TraceSpanData& s : spans) {
    if (s.name == "component") {
      ++components;
      EXPECT_EQ(s.parent, 1u);
      EXPECT_GT(s.duration_ns, 0u);
    }
  }
  EXPECT_EQ(components, static_cast<size_t>(kThreads) * kPerThread);
}

TEST(TraceIdTest, IdsAreUniqueAndNonZero) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
}

TEST(TraceStoreTest, SamplingIsDeterministicAndProportionate) {
  // Same (id, rate) -> same verdict, always.
  for (uint64_t id = 1; id <= 512; ++id) {
    EXPECT_EQ(TraceStore::ShouldSample(id, 0.25),
              TraceStore::ShouldSample(id, 0.25));
  }
  // The edges never flip.
  EXPECT_FALSE(TraceStore::ShouldSample(123, 0.0));
  EXPECT_FALSE(TraceStore::ShouldSample(123, -1.0));
  EXPECT_TRUE(TraceStore::ShouldSample(123, 1.0));
  EXPECT_TRUE(TraceStore::ShouldSample(123, 2.0));
  // A sampled id at rate r stays sampled at every higher rate
  // (the hash point is fixed; only the threshold moves).
  for (uint64_t id = 1; id <= 512; ++id) {
    if (TraceStore::ShouldSample(id, 0.1)) {
      EXPECT_TRUE(TraceStore::ShouldSample(id, 0.5));
    }
  }
  // Roughly rate-proportionate over many ids (loose band: 10% +- 5pp).
  int sampled = 0;
  for (uint64_t id = 1; id <= 10000; ++id) {
    if (TraceStore::ShouldSample(NextTraceId(), 0.1)) ++sampled;
  }
  EXPECT_GT(sampled, 500);
  EXPECT_LT(sampled, 1500);
}

std::shared_ptr<TraceContext> MakeTrace(uint64_t id,
                                        const std::string& name) {
  auto trace = std::make_shared<TraceContext>(id, name);
  trace->root().End();
  return trace;
}

TEST(TraceStoreTest, RingWrapsAroundOldestFirst) {
  TraceStore store(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    store.Record(MakeTrace(i, "t" + std::to_string(i)));
  }
  EXPECT_EQ(store.recorded(), 5u);
  EXPECT_EQ(store.size(), 3u);
  const auto recent = store.Recent();
  ASSERT_EQ(recent.size(), 3u);
  // 1 and 2 were evicted; survivors come back oldest first.
  EXPECT_EQ(recent[0]->trace_id(), 3u);
  EXPECT_EQ(recent[1]->trace_id(), 4u);
  EXPECT_EQ(recent[2]->trace_id(), 5u);
  // A limit keeps the newest, still oldest-first among themselves.
  const auto limited = store.Recent(2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[0]->trace_id(), 4u);
  EXPECT_EQ(limited[1]->trace_id(), 5u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.recorded(), 0u);
}

TEST(TraceStoreTest, ConcurrentRecordLosesNothing) {
  TraceStore store(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        store.Record(MakeTrace(NextTraceId(), "load"));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(store.size(), store.capacity());
}

TEST(TraceExportTest, SubtreeJsonNestsChildren) {
  TraceContext ctx(0xabcd, "POST /query");
  TraceSpan query = ctx.root().StartChild("query");
  TraceSpan parse = query.StartChild("parse");
  parse.End();
  query.SetAttr("cache", std::string("miss"));
  query.End();
  ctx.root().End();

  const std::string json = SpanSubtreeJson(ctx, query.index());
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"attrs\":{\"cache\":\"miss\"}"), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{\"name\":\"parse\""),
            std::string::npos);
  // Out-of-range roots render as JSON null, not garbage.
  EXPECT_EQ(SpanSubtreeJson(ctx, 999), "null");

  const std::string whole = TraceJson(ctx);
  EXPECT_NE(whole.find("\"trace_id\":\"000000000000abcd\""),
            std::string::npos);
  EXPECT_NE(whole.find("\"name\":\"POST /query\""), std::string::npos);
}

TEST(TraceExportTest, ChromeJsonEmitsOneCompleteEventPerSpan) {
  auto trace = std::make_shared<TraceContext>(0x42, "POST /query");
  TraceSpan child = trace->root().StartChild("evaluate");
  child.SetAttr("rows", int64_t{3});
  child.End();
  trace->root().End();

  const std::string json = TracesChromeJson({trace});
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"0000000000000042\""),
            std::string::npos);
  EXPECT_NE(json.find("\"rows\":3"), std::string::npos);
  // Two spans -> two events.
  size_t events = 0;
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 2u);
}

}  // namespace
}  // namespace mrsl
