// Tests for BayesNet: CPT validation, joint probability, forward sampling
// statistics, schema generation, and text serialization round-trips.

#include "bn/bayes_net.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mrsl {
namespace {

// A -> B with known CPTs.
BayesNet SimpleNet() {
  auto topo = Topology::Create({"A", "B"}, {2, 2}, {{}, {0}});
  EXPECT_TRUE(topo.ok());
  // P(A=0)=0.3; P(B=0|A=0)=0.9, P(B=0|A=1)=0.2.
  auto bn = BayesNet::Create(std::move(topo).value(),
                             {{0.3, 0.7}, {0.9, 0.1, 0.2, 0.8}});
  EXPECT_TRUE(bn.ok());
  return std::move(bn).value();
}

TEST(BayesNetTest, CreateValidatesCptSize) {
  auto topo = Topology::Create({"A"}, {3}, {{}});
  ASSERT_TRUE(topo.ok());
  auto bn = BayesNet::Create(*topo, {{0.5, 0.5}});  // wrong arity
  ASSERT_FALSE(bn.ok());
}

TEST(BayesNetTest, CreateValidatesRowSums) {
  auto topo = Topology::Create({"A"}, {2}, {{}});
  ASSERT_TRUE(topo.ok());
  auto bn = BayesNet::Create(*topo, {{0.5, 0.6}});
  ASSERT_FALSE(bn.ok());
}

TEST(BayesNetTest, CreateRejectsZeroEntries) {
  auto topo = Topology::Create({"A"}, {2}, {{}});
  ASSERT_TRUE(topo.ok());
  auto bn = BayesNet::Create(*topo, {{0.0, 1.0}});
  ASSERT_FALSE(bn.ok());
}

TEST(BayesNetTest, CondProbReadsCpt) {
  BayesNet bn = SimpleNet();
  std::vector<ValueId> assign = {0, 0};
  EXPECT_DOUBLE_EQ(bn.CondProb(0, 0, assign), 0.3);
  EXPECT_DOUBLE_EQ(bn.CondProb(1, 0, assign), 0.9);
  assign[0] = 1;
  EXPECT_DOUBLE_EQ(bn.CondProb(1, 0, assign), 0.2);
}

TEST(BayesNetTest, JointProbFactorizes) {
  BayesNet bn = SimpleNet();
  EXPECT_DOUBLE_EQ(bn.JointProb({0, 0}), 0.3 * 0.9);
  EXPECT_DOUBLE_EQ(bn.JointProb({0, 1}), 0.3 * 0.1);
  EXPECT_DOUBLE_EQ(bn.JointProb({1, 0}), 0.7 * 0.2);
  EXPECT_DOUBLE_EQ(bn.JointProb({1, 1}), 0.7 * 0.8);
}

TEST(BayesNetTest, JointSumsToOne) {
  Rng rng(5);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
  double total = 0.0;
  for (ValueId a = 0; a < 3; ++a) {
    for (ValueId b = 0; b < 3; ++b) {
      for (ValueId c = 0; c < 3; ++c) {
        for (ValueId d = 0; d < 3; ++d) total += bn.JointProb({a, b, c, d});
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BayesNetTest, ForwardSampleMatchesJoint) {
  BayesNet bn = SimpleNet();
  Rng rng(42);
  constexpr int kDraws = 200000;
  int count00 = 0;
  int count_b0 = 0;
  for (int i = 0; i < kDraws; ++i) {
    Tuple t = bn.ForwardSample(&rng);
    ASSERT_TRUE(t.IsComplete());
    if (t.value(0) == 0 && t.value(1) == 0) ++count00;
    if (t.value(1) == 0) ++count_b0;
  }
  EXPECT_NEAR(count00 / static_cast<double>(kDraws), 0.27, 0.01);
  // P(B=0) = 0.3*0.9 + 0.7*0.2 = 0.41.
  EXPECT_NEAR(count_b0 / static_cast<double>(kDraws), 0.41, 0.01);
}

TEST(BayesNetTest, RandomInstanceHasValidCpts) {
  Rng rng(7);
  for (double alpha : {0.3, 1.0, 4.0}) {
    BayesNet bn =
        BayesNet::RandomInstance(Topology::Chain(5, 3), &rng, alpha);
    for (AttrId v = 0; v < 5; ++v) {
      const auto& cpt = bn.cpt(v);
      const size_t card = 3;
      for (size_t row = 0; row * card < cpt.size(); ++row) {
        double sum = 0.0;
        for (size_t c = 0; c < card; ++c) {
          double p = cpt[row * card + c];
          EXPECT_GT(p, 0.0);
          sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
      }
    }
  }
}

TEST(BayesNetTest, MakeSchemaMirrorsTopology) {
  BayesNet bn = SimpleNet();
  Schema schema = bn.MakeSchema();
  EXPECT_EQ(schema.num_attrs(), 2u);
  EXPECT_EQ(schema.attr(0).name(), "A");
  EXPECT_EQ(schema.attr(1).cardinality(), 2u);
  EXPECT_EQ(schema.attr(1).label(0), "v0");
}

TEST(BayesNetTest, SampleRelationProducesCompleteRows) {
  BayesNet bn = SimpleNet();
  Rng rng(3);
  Relation rel = bn.SampleRelation(50, &rng);
  EXPECT_EQ(rel.num_rows(), 50u);
  EXPECT_EQ(rel.CompleteRowIndices().size(), 50u);
}

TEST(BayesNetTest, TextRoundTrip) {
  Rng rng(11);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(5, 3), &rng);
  auto again = BayesNet::FromText(bn.ToText());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->num_vars(), bn.num_vars());
  // Joint probabilities are preserved bit-for-bit (printed at %.17g).
  Rng probe_rng(13);
  for (int i = 0; i < 100; ++i) {
    std::vector<ValueId> assign(5);
    for (size_t v = 0; v < 5; ++v) {
      assign[v] = static_cast<ValueId>(probe_rng.UniformInt(3));
    }
    EXPECT_DOUBLE_EQ(bn.JointProb(assign), again->JointProb(assign));
  }
}

TEST(BayesNetTest, FromTextRejectsGarbage) {
  EXPECT_FALSE(BayesNet::FromText("nonsense 3\n").ok());
  EXPECT_FALSE(BayesNet::FromText("bn 2\nvar A 2\n").ok());  // missing var
}

}  // namespace
}  // namespace mrsl
