// Tests for Algorithm 3 and the workload sampling strategies: result
// alignment, tuple-DAG vs tuple-at-a-time cost and accuracy parity, and
// the independent-product baseline.

#include "core/workload.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "bn/exact.h"
#include "core/learner.h"
#include "expfw/metrics.h"

namespace mrsl {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1212);
    bn_ = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
    train_ = bn_.SampleRelation(15000, &rng);
    LearnOptions lo;
    lo.support_threshold = 0.001;
    auto model = LearnModel(train_, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();

    // A workload with overlapping subsumption structure: some tuples with
    // 2 missing, their subsumers with 3 missing, plus duplicates.
    Rng wl_rng(77);
    for (int i = 0; i < 25; ++i) {
      Tuple t = bn_.ForwardSample(&wl_rng);
      t.set_value(1, kMissingValue);
      t.set_value(2, kMissingValue);
      workload_.push_back(t);
      if (i % 3 == 0) {
        Tuple g = t;
        g.set_value(3, kMissingValue);
        workload_.push_back(g);  // subsumes t
      }
      if (i % 5 == 0) workload_.push_back(t);  // duplicate
    }
  }

  WorkloadOptions WOpts(size_t samples, uint64_t seed = 5) {
    WorkloadOptions o;
    o.gibbs.burn_in = 30;
    o.gibbs.samples = samples;
    o.gibbs.seed = seed;
    return o;
  }

  BayesNet bn_;
  Relation train_;
  MrslModel model_;
  std::vector<Tuple> workload_;
};

TEST_F(WorkloadTest, RejectsCompleteTuples) {
  std::vector<Tuple> bad = {Tuple({0, 0, 0, 0})};
  EXPECT_FALSE(
      RunWorkload(model_, bad, SamplingMode::kTupleDag, WOpts(100)).ok());
}

TEST_F(WorkloadTest, ResultsAlignedWithWorkload) {
  for (SamplingMode mode :
       {SamplingMode::kTupleAtATime, SamplingMode::kTupleDag,
        SamplingMode::kIndependentProduct}) {
    auto dists = RunWorkload(model_, workload_, mode, WOpts(200));
    ASSERT_TRUE(dists.ok()) << SamplingModeName(mode);
    ASSERT_EQ(dists->size(), workload_.size());
    for (size_t i = 0; i < workload_.size(); ++i) {
      EXPECT_EQ((*dists)[i].vars(), workload_[i].MissingAttrs());
      EXPECT_NEAR((*dists)[i].Sum(), 1.0, 1e-9);
    }
  }
}

TEST_F(WorkloadTest, DuplicateTuplesGetIdenticalDistributions) {
  auto dists =
      RunWorkload(model_, workload_, SamplingMode::kTupleDag, WOpts(200));
  ASSERT_TRUE(dists.ok());
  for (size_t i = 0; i < workload_.size(); ++i) {
    for (size_t j = i + 1; j < workload_.size(); ++j) {
      if (workload_[i] == workload_[j]) {
        EXPECT_EQ((*dists)[i].probs(), (*dists)[j].probs());
      }
    }
  }
}

TEST_F(WorkloadTest, TupleDagDrawsFewerPoints) {
  WorkloadStats baseline;
  WorkloadStats dag;
  ASSERT_TRUE(RunWorkload(model_, workload_, SamplingMode::kTupleAtATime,
                          WOpts(300), &baseline)
                  .ok());
  ASSERT_TRUE(RunWorkload(model_, workload_, SamplingMode::kTupleDag,
                          WOpts(300), &dag)
                  .ok());
  EXPECT_EQ(baseline.distinct_tuples, dag.distinct_tuples);
  // The DAG shares samples with subsumees, so it must draw strictly
  // fewer points on this subsumption-rich workload.
  EXPECT_LT(dag.points_sampled, baseline.points_sampled);
  EXPECT_GT(dag.shared_samples, 0u);
  EXPECT_EQ(baseline.shared_samples, 0u);
}

TEST_F(WorkloadTest, TupleDagAccuracyMatchesTupleAtATime) {
  // Paper: "we compared the accuracy of tuple-DAG to tuple-at-a-time and
  // found no difference". Check mean KL against ground truth.
  auto base = RunWorkload(model_, workload_, SamplingMode::kTupleAtATime,
                          WOpts(2000, 3));
  auto dag =
      RunWorkload(model_, workload_, SamplingMode::kTupleDag, WOpts(2000, 3));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(dag.ok());
  AccuracyAccumulator acc_base;
  AccuracyAccumulator acc_dag;
  for (size_t i = 0; i < workload_.size(); ++i) {
    auto truth = TrueDistribution(bn_, workload_[i]);
    ASSERT_TRUE(truth.ok());
    acc_base.Add(KlDivergence(*truth, (*base)[i]), false);
    acc_dag.Add(KlDivergence(*truth, (*dag)[i]), false);
  }
  EXPECT_NEAR(acc_base.MeanKl(), acc_dag.MeanKl(), 0.05);
}

TEST_F(WorkloadTest, AllAtATimeProducesEstimates) {
  // Use a small workload (all-at-a-time wastes most samples).
  std::vector<Tuple> small(workload_.begin(), workload_.begin() + 6);
  WorkloadOptions opts = WOpts(100);
  opts.max_total_cycles = 200000;
  WorkloadStats stats;
  auto dists = RunWorkload(model_, small, SamplingMode::kAllAtATime, opts,
                           &stats);
  ASSERT_TRUE(dists.ok());
  for (const auto& d : *dists) {
    EXPECT_NEAR(d.Sum(), 1.0, 1e-9);
  }
  // All-at-a-time draws from the full space; with 4 binary attributes the
  // evidence of these tuples is common enough that the chain terminates
  // well before the cycle cap (the paper's 6%-support example is where it
  // degrades — bench_ablation covers that regime).
  EXPECT_GT(stats.points_sampled, 100u);
  EXPECT_LT(stats.points_sampled, opts.max_total_cycles);
}

TEST_F(WorkloadTest, IndependentProductMatchesGibbsOnIndependentData) {
  // On an independent network the product approximation is exact, so the
  // two strategies should agree closely.
  Rng rng(999);
  BayesNet ind_bn =
      BayesNet::RandomInstance(Topology::Independent(4, 3), &rng);
  Relation train = ind_bn.SampleRelation(20000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.001;
  auto model = LearnModel(train, lo);
  ASSERT_TRUE(model.ok());

  std::vector<Tuple> workload;
  for (int i = 0; i < 10; ++i) {
    Tuple t = ind_bn.ForwardSample(&rng);
    t.set_value(0, kMissingValue);
    t.set_value(2, kMissingValue);
    workload.push_back(std::move(t));
  }
  auto prod = RunWorkload(*model, workload,
                          SamplingMode::kIndependentProduct, WOpts(2000));
  auto gibbs =
      RunWorkload(*model, workload, SamplingMode::kTupleDag, WOpts(2000));
  ASSERT_TRUE(prod.ok());
  ASSERT_TRUE(gibbs.ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto truth = TrueDistribution(ind_bn, workload[i]);
    ASSERT_TRUE(truth.ok());
    double kl_prod = KlDivergence(*truth, (*prod)[i]);
    double kl_gibbs = KlDivergence(*truth, (*gibbs)[i]);
    EXPECT_LT(kl_prod, 0.05);
    EXPECT_LT(kl_gibbs, 0.15);
  }
}

TEST_F(WorkloadTest, StatsAccounting) {
  WorkloadStats stats;
  ASSERT_TRUE(RunWorkload(model_, workload_, SamplingMode::kTupleAtATime,
                          WOpts(100), &stats)
                  .ok());
  // tuple-at-a-time: distinct * (burn_in + samples) sweeps exactly.
  EXPECT_EQ(stats.points_sampled, stats.distinct_tuples * (30 + 100));
  EXPECT_EQ(stats.burn_in_points, stats.distinct_tuples * 30);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

}  // namespace
}  // namespace mrsl
