// Tests for Relation: append validation, Rc/Ri split, support counting
// (checked against the paper's worked numbers), and CSV round-trips.

#include "relational/relation.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "paper_example.h"

namespace mrsl {
namespace {

TEST(RelationTest, AppendChecksArity) {
  auto schema = Schema::Create({Attribute("a", {"x"}), Attribute("b", {"y"})});
  ASSERT_TRUE(schema.ok());
  Relation rel(*schema);
  EXPECT_TRUE(rel.Append(Tuple({0, 0})).ok());
  EXPECT_FALSE(rel.Append(Tuple({0})).ok());
  EXPECT_EQ(rel.num_rows(), 1u);
}

TEST(RelationTest, Fig1ParsesWithExpectedShape) {
  Relation rel = LoadFig1();
  EXPECT_EQ(rel.num_rows(), 17u);
  EXPECT_EQ(rel.schema().num_attrs(), 4u);
  EXPECT_EQ(rel.CompleteRowIndices().size(), 8u);
  EXPECT_EQ(rel.IncompleteRowIndices().size(), 9u);

  AttrId age_id = 0;
  ASSERT_TRUE(rel.schema().FindAttr("age", &age_id));
  EXPECT_EQ(rel.schema().attr(age_id).cardinality(), 3u);  // 20/30/40
  AttrId inc_id = 0;
  ASSERT_TRUE(rel.schema().FindAttr("inc", &inc_id));
  EXPECT_EQ(rel.schema().attr(inc_id).cardinality(), 2u);  // 50K/100K
}

// The paper: "3 out of 8 points in Rc (t4, t6, t7) support t1, so
// supp(t1) = 3/8".
TEST(RelationTest, SupportMatchesPaperExample) {
  Relation rel = LoadFig1();
  const Tuple& t1 = rel.row(0);
  EXPECT_EQ(rel.CountMatches(t1), 3u);
  EXPECT_DOUBLE_EQ(rel.Support(t1), 3.0 / 8.0);
}

TEST(RelationTest, SupportOfAllMissingIsOne) {
  Relation rel = LoadFig1();
  Tuple t_star(4);
  EXPECT_DOUBLE_EQ(rel.Support(t_star), 1.0);
}

TEST(RelationTest, SupportOnEmptyRelationIsZero) {
  auto schema = Schema::Create({Attribute("a", {"x"})});
  ASSERT_TRUE(schema.ok());
  Relation rel(*schema);
  EXPECT_DOUBLE_EQ(rel.Support(Tuple(1)), 0.0);
}

TEST(RelationTest, CsvRoundTrip) {
  Relation rel = LoadFig1();
  auto again = Relation::FromCsv(rel.ToCsv());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->num_rows(), rel.num_rows());
  for (size_t i = 0; i < rel.num_rows(); ++i) {
    EXPECT_EQ(again->row(i), rel.row(i)) << "row " << i;
  }
}

TEST(RelationTest, EmptyCellTreatedAsMissing) {
  auto rel = Relation::FromCsv("a,b\nx,\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->row(0).value(1), kMissingValue);
}

TEST(RelationTest, RaggedRowRejected) {
  auto rel = Relation::FromCsv("a,b\nx\n");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kCorruption);
}

TEST(RelationTest, HeaderOnlyCsv) {
  auto rel = Relation::FromCsv("a,b\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 0u);
  EXPECT_EQ(rel->schema().num_attrs(), 2u);
}

TEST(RelationTest, FileRoundTrip) {
  Relation rel = LoadFig1();
  std::string path = ::testing::TempDir() + "/mrsl_relation_test.csv";
  ASSERT_TRUE(rel.SaveCsvFile(path).ok());
  auto again = Relation::LoadCsvFile(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_rows(), rel.num_rows());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrsl
