// Unit tests for the columnar batch primitives (pdb/columnar.h): the
// CSR lineage table's append/materialize/gather operations, scan
// layout, empty batches, full-filter selections, duplicate join keys
// in the hash index, group-id assignment order, and small end-to-end
// fixtures holding the batch evaluator to exact equality with the row
// reference.

#include "pdb/columnar.h"

#include <gtest/gtest.h>

#include <vector>

#include "pdb/plan.h"
#include "pdb/query.h"

namespace mrsl {
namespace {

Schema TwoAttrSchema() {
  auto s = Schema::Create(
      {Attribute("x", {"x0", "x1"}), Attribute("y", {"y0", "y1", "y2"})});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

// Three blocks: certain, two-way, possibly absent — with duplicate
// values across blocks so projections actually group.
ProbDatabase SmallDb() {
  ProbDatabase db(TwoAttrSchema());
  Block b1;
  b1.alternatives.push_back({Tuple({0, 0}), 1.0});
  EXPECT_TRUE(db.AddBlock(b1).ok());
  Block b2;
  b2.alternatives.push_back({Tuple({0, 1}), 0.4});
  b2.alternatives.push_back({Tuple({1, 1}), 0.6});
  EXPECT_TRUE(db.AddBlock(b2).ok());
  Block b3;
  b3.alternatives.push_back({Tuple({0, 0}), 0.5});
  b3.alternatives.push_back({Tuple({1, 2}), 0.3});  // mass 0.8
  EXPECT_TRUE(db.AddBlock(b3).ok());
  return db;
}

Lineage SimpleLineage(uint32_t source, size_t block,
                      std::vector<uint32_t> alts) {
  Lineage lin;
  lin.simple = true;
  lin.source = source;
  lin.block = block;
  lin.alts = std::move(alts);
  lin.blocks = {Lineage::BlockKey(source, block)};
  return lin;
}

Lineage CompositeLineage(std::vector<uint64_t> keys) {
  Lineage lin;
  lin.blocks = std::move(keys);
  return lin;
}

TEST(LineageTableTest, AppendMaterializeRoundTrip) {
  LineageTable table;
  Lineage simple = SimpleLineage(1, 7, {0, 2});
  Lineage composite = CompositeLineage(
      {Lineage::BlockKey(0, 3), Lineage::BlockKey(1, 7)});
  table.Append(simple);
  table.Append(composite);
  ASSERT_EQ(table.num_rows(), 2u);

  Lineage got0 = table.MaterializeRow(0);
  EXPECT_TRUE(got0.simple);
  EXPECT_EQ(got0.source, simple.source);
  EXPECT_EQ(got0.block, simple.block);
  EXPECT_EQ(got0.alts, simple.alts);
  EXPECT_EQ(got0.blocks, simple.blocks);

  Lineage got1 = table.MaterializeRow(1);
  EXPECT_FALSE(got1.simple);
  EXPECT_TRUE(got1.alts.empty());
  EXPECT_EQ(got1.blocks, composite.blocks);
}

TEST(LineageTableTest, AppendFromCopiesRowsAcrossTables) {
  LineageTable src;
  src.Append(SimpleLineage(0, 1, {1}));
  src.Append(CompositeLineage({5, 9, 12}));
  LineageTable dst;
  dst.AppendFrom(src, 1);
  dst.AppendFrom(src, 0);
  ASSERT_EQ(dst.num_rows(), 2u);
  EXPECT_EQ(dst.MaterializeRow(0).blocks, src.MaterializeRow(1).blocks);
  EXPECT_EQ(dst.MaterializeRow(1).alts, src.MaterializeRow(0).alts);
}

TEST(LineageTableTest, KeepGathersSpansInPlace) {
  LineageTable table;
  table.Append(SimpleLineage(0, 0, {0}));
  table.Append(CompositeLineage({1, 2, 3}));
  table.Append(SimpleLineage(0, 2, {1, 3}));
  table.Append(CompositeLineage({40}));
  // Keep rows 1 and 3 — both span shapes move left past a dropped row.
  table.Keep({1, 3});
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.MaterializeRow(0).blocks, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_FALSE(table.MaterializeRow(0).simple);
  EXPECT_EQ(table.MaterializeRow(1).blocks, (std::vector<uint64_t>{40}));

  // Identity selection is a no-op.
  table.Keep({0, 1});
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.MaterializeRow(0).blocks, (std::vector<uint64_t>{1, 2, 3}));

  // Empty selection empties the table.
  table.Keep({});
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_TRUE(table.keys.empty());
  EXPECT_TRUE(table.alts.empty());
}

TEST(ColumnBatchTest, ScanLayoutIsBlockMajorWithSimpleLineage) {
  ProbDatabase db = SmallDb();
  ColumnBatch batch = ScanToBatch(db, /*source=*/0);
  ASSERT_EQ(batch.num_rows(), 5u);
  ASSERT_EQ(batch.num_attrs(), 2u);
  EXPECT_TRUE(batch.safe);
  // Row 2 is block 1 alternative 1: values (1, 1), prob 0.6.
  EXPECT_EQ(batch.cols[0][2], 1);
  EXPECT_EQ(batch.cols[1][2], 1);
  EXPECT_EQ(batch.lo[2], 0.6);
  EXPECT_EQ(batch.hi[2], 0.6);
  Lineage lin = batch.lineage.MaterializeRow(2);
  EXPECT_TRUE(lin.simple);
  EXPECT_EQ(lin.block, 1u);
  EXPECT_EQ(lin.alts, (std::vector<uint32_t>{1}));
  EXPECT_EQ(lin.blocks, (std::vector<uint64_t>{Lineage::BlockKey(0, 1)}));
}

TEST(ColumnBatchTest, EmptyBatchRoundTrips) {
  ProbDatabase empty(TwoAttrSchema());
  ColumnBatch batch = ScanToBatch(empty, 0);
  EXPECT_EQ(batch.num_rows(), 0u);
  batch.Keep({});  // Keep on an empty batch is legal
  PlanResult result = BatchToPlanResult(std::move(batch));
  EXPECT_TRUE(result.rows.empty());
  EXPECT_TRUE(result.safe);
  EXPECT_EQ(result.schema.num_attrs(), 2u);
}

TEST(ColumnBatchTest, KeepAppliesSelectionVectorAcrossAllArrays) {
  ProbDatabase db = SmallDb();
  ColumnBatch batch = ScanToBatch(db, 0);
  batch.Keep({0, 2, 4});
  ASSERT_EQ(batch.num_rows(), 3u);
  EXPECT_EQ(batch.cols[0][1], 1);  // old row 2
  EXPECT_EQ(batch.lo[1], 0.6);
  EXPECT_EQ(batch.lineage.MaterializeRow(2).block, 2u);  // old row 4
  EXPECT_EQ(batch.lineage.MaterializeRow(2).alts,
            (std::vector<uint32_t>{1}));
}

TEST(ColumnBatchTest, FullFilterSelectionYieldsEmptyResult) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  // No alternative has (x=x1 AND x=x0): the sweep drops every row.
  PlanPtr plan = SelectPlan(Predicate::Eq(0, 0).And(Predicate::Ne(0, 0)),
                            ScanPlan(0));
  auto col = EvaluatePlan(*plan, sources);
  auto row = EvaluatePlanRowwise(*plan, sources);
  ASSERT_TRUE(col.ok());
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(col->rows.empty());
  EXPECT_TRUE(row->rows.empty());
  EXPECT_TRUE(col->safe);

  // And a projection over the empty selection stays empty.
  PlanPtr projected = ProjectPlan({1}, plan);
  auto empty_proj = EvaluatePlan(*projected, sources);
  ASSERT_TRUE(empty_proj.ok());
  EXPECT_TRUE(empty_proj->rows.empty());
}

TEST(BuildKeyIndexTest, DuplicateKeysAccumulateInRowOrder) {
  std::vector<ValueId> key_col = {2, 0, 2, 1, 2, 0};
  auto index = BuildKeyIndex(key_col);
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.at(2), (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(index.at(0), (std::vector<uint32_t>{1, 5}));
  EXPECT_EQ(index.at(1), (std::vector<uint32_t>{3}));
}

TEST(AssignGroupIdsTest, GroupsNumberedInFirstSeenOrder) {
  ProbDatabase db = SmallDb();
  ColumnBatch batch = ScanToBatch(db, 0);
  // Project on x alone: values per row are 0,0,1,0,1.
  GroupIds groups = AssignGroupIds(batch, {0});
  ASSERT_EQ(groups.num_groups(), 2u);
  EXPECT_EQ(groups.group_of_row, (std::vector<uint32_t>{0, 0, 1, 0, 1}));
  EXPECT_EQ(groups.rep_row, (std::vector<uint32_t>{0, 2}));

  // Two-column grouping distinguishes (x, y) combinations.
  GroupIds pairs = AssignGroupIds(batch, {0, 1});
  EXPECT_EQ(pairs.num_groups(), 4u);  // (0,0) (0,1) (1,1) (1,2)
  EXPECT_EQ(pairs.group_of_row, (std::vector<uint32_t>{0, 1, 2, 0, 3}));
}

// Duplicate join keys on both sides: every (left, right) pair of
// matching alternatives must appear, left-major with right matches in
// row order, and the batch evaluator must agree with the row reference
// exactly — values, probabilities, and lineage.
TEST(ColumnarJoinTest, DuplicateJoinKeysMatchRowReferenceExactly) {
  ProbDatabase db1 = SmallDb();
  ProbDatabase db2 = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db1, &db2};
  PlanPtr plan = JoinPlan(ScanPlan(0), ScanPlan(1), 0, 0);
  auto col = EvaluatePlan(*plan, sources);
  auto row = EvaluatePlanRowwise(*plan, sources);
  ASSERT_TRUE(col.ok());
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(col->rows.size(), row->rows.size());
  EXPECT_GT(col->rows.size(), 5u);  // duplicate x keys fan out
  for (size_t r = 0; r < col->rows.size(); ++r) {
    EXPECT_EQ(col->rows[r].tuple.values(), row->rows[r].tuple.values());
    EXPECT_EQ(col->rows[r].prob.lo, row->rows[r].prob.lo);
    EXPECT_EQ(col->rows[r].prob.hi, row->rows[r].prob.hi);
    EXPECT_EQ(col->rows[r].lineage.blocks, row->rows[r].lineage.blocks);
  }
}

// A self-join on the same source exercises the same-block intersection
// (simple-event conjunction) and impossible-pair suppression in the
// batch path.
TEST(ColumnarJoinTest, SelfJoinSameBlockPairsMatchRowReference) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  PlanPtr plan = JoinPlan(ScanPlan(0), ScanPlan(0), 1, 1);
  auto col = EvaluatePlan(*plan, sources);
  auto row = EvaluatePlanRowwise(*plan, sources);
  ASSERT_TRUE(col.ok());
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(col->rows.size(), row->rows.size());
  for (size_t r = 0; r < col->rows.size(); ++r) {
    EXPECT_EQ(col->rows[r].tuple.values(), row->rows[r].tuple.values());
    EXPECT_EQ(col->rows[r].prob.lo, row->rows[r].prob.lo);
    EXPECT_EQ(col->rows[r].prob.hi, row->rows[r].prob.hi);
    EXPECT_EQ(col->rows[r].lineage.simple, row->rows[r].lineage.simple);
    EXPECT_EQ(col->rows[r].lineage.blocks, row->rows[r].lineage.blocks);
  }
}

// Projecting away a self-join's key forces dissociation: the batch
// disjoin's sort-unique key collection must produce the same lineage
// and Frechet bounds as the row rules' pairwise merging.
TEST(ColumnarProjectTest, CorrelatedGroupsDissociateIdentically) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  PlanPtr plan = ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));
  auto col = EvaluatePlan(*plan, sources);
  auto row = EvaluatePlanRowwise(*plan, sources);
  ASSERT_TRUE(col.ok());
  ASSERT_TRUE(row.ok());
  EXPECT_FALSE(col->safe);
  EXPECT_EQ(col->safe, row->safe);
  ASSERT_EQ(col->rows.size(), row->rows.size());
  for (size_t r = 0; r < col->rows.size(); ++r) {
    EXPECT_EQ(col->rows[r].tuple.values(), row->rows[r].tuple.values());
    EXPECT_EQ(col->rows[r].prob.lo, row->rows[r].prob.lo);
    EXPECT_EQ(col->rows[r].prob.hi, row->rows[r].prob.hi);
    EXPECT_EQ(col->rows[r].lineage.blocks, row->rows[r].lineage.blocks);
  }
}

}  // namespace
}  // namespace mrsl
