// Tests for relation deltas: apply semantics (updates, then deletes,
// then appended inserts), CSV parsing, and the incremental-derivation
// planner's clean/dirty component classification.

#include "core/delta.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/tuple_dag.h"
#include "util/rng.h"

namespace mrsl {
namespace {

Schema ThreeAttrSchema() {
  auto s = Schema::Create({Attribute("a", {"a0", "a1", "a2"}),
                           Attribute("b", {"b0", "b1", "b2"}),
                           Attribute("c", {"c0", "c1"})});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

Tuple T(std::vector<int> vals) {
  Tuple t(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    t.set_value(static_cast<AttrId>(i), vals[i]);
  }
  return t;
}

Relation BaseRelation() {
  Relation rel(ThreeAttrSchema());
  EXPECT_TRUE(rel.Append(T({0, 0, 0})).ok());   // row 0
  EXPECT_TRUE(rel.Append(T({1, 1, 1})).ok());   // row 1
  EXPECT_TRUE(rel.Append(T({2, 2, 0})).ok());   // row 2
  EXPECT_TRUE(rel.Append(T({0, 1, -1})).ok());  // row 3 (incomplete)
  return rel;
}

TEST(ApplyDeltaTest, UpdatesDeletesInsertsInOrder) {
  Relation rel = BaseRelation();
  RelationDelta delta;
  delta.updates.push_back({1, T({1, 2, 0})});
  delta.deletes.push_back(0);
  delta.inserts.push_back(T({2, 0, -1}));

  auto out = ApplyDelta(rel, delta);
  ASSERT_TRUE(out.ok());
  // Row 1 updated, row 0 deleted (shifting the rest down), insert last.
  ASSERT_EQ(out->num_rows(), 4u);
  EXPECT_EQ(out->row(0), T({1, 2, 0}));
  EXPECT_EQ(out->row(1), T({2, 2, 0}));
  EXPECT_EQ(out->row(2), T({0, 1, -1}));
  EXPECT_EQ(out->row(3), T({2, 0, -1}));
  // The source relation is untouched.
  EXPECT_EQ(rel.row(0), T({0, 0, 0}));
}

TEST(ApplyDeltaTest, MultipleDeletesUsePreDeltaIndices) {
  Relation rel = BaseRelation();
  RelationDelta delta;
  delta.deletes = {0, 2};  // both indices refer to the original rows
  auto out = ApplyDelta(rel, delta);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->row(0), T({1, 1, 1}));
  EXPECT_EQ(out->row(1), T({0, 1, -1}));
}

TEST(ApplyDeltaTest, RejectsBadDeltas) {
  Relation rel = BaseRelation();
  {
    RelationDelta d;
    d.updates.push_back({9, T({0, 0, 0})});
    EXPECT_EQ(ApplyDelta(rel, d).status().code(), StatusCode::kOutOfRange);
  }
  {
    RelationDelta d;
    d.deletes.push_back(4);
    EXPECT_EQ(ApplyDelta(rel, d).status().code(), StatusCode::kOutOfRange);
  }
  {
    RelationDelta d;  // same row updated twice
    d.updates.push_back({1, T({0, 0, 0})});
    d.updates.push_back({1, T({1, 1, 1})});
    EXPECT_FALSE(ApplyDelta(rel, d).ok());
  }
  {
    RelationDelta d;  // update and delete of the same row conflict
    d.updates.push_back({1, T({0, 0, 0})});
    d.deletes.push_back(1);
    EXPECT_FALSE(ApplyDelta(rel, d).ok());
  }
  {
    RelationDelta d;  // arity mismatch
    d.inserts.push_back(Tuple(2));
    EXPECT_FALSE(ApplyDelta(rel, d).ok());
  }
}

TEST(ApplyDeltaTest, IndexStableIffNoDeletes) {
  RelationDelta d;
  d.updates.push_back({0, T({0, 0, 0})});
  d.inserts.push_back(T({1, 1, 1}));
  EXPECT_TRUE(d.IndexStable());
  d.deletes.push_back(2);
  EXPECT_FALSE(d.IndexStable());
}

TEST(ParseDeltaCsvTest, ParsesAllOps) {
  Schema schema = ThreeAttrSchema();
  auto delta = ParseDeltaCsv(schema,
                             "op,row,a,b,c\n"
                             "insert,,a2,?,c1\n"
                             "update,3,a0,b1,?\n"
                             "delete,1,,,\n");
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->inserts.size(), 1u);
  EXPECT_EQ(delta->inserts[0], T({2, -1, 1}));
  ASSERT_EQ(delta->updates.size(), 1u);
  EXPECT_EQ(delta->updates[0].row, 3u);
  EXPECT_EQ(delta->updates[0].tuple, T({0, 1, -1}));
  ASSERT_EQ(delta->deletes.size(), 1u);
  EXPECT_EQ(delta->deletes[0], 1u);
}

TEST(ParseDeltaCsvTest, RejectsMalformedInput) {
  Schema schema = ThreeAttrSchema();
  // Wrong header.
  EXPECT_FALSE(ParseDeltaCsv(schema, "op,a,b,c\ninsert,a0,b0,c0\n").ok());
  // Wrong attribute order.
  EXPECT_FALSE(
      ParseDeltaCsv(schema, "op,row,b,a,c\ninsert,,b0,a0,c0\n").ok());
  // Unknown op.
  EXPECT_FALSE(
      ParseDeltaCsv(schema, "op,row,a,b,c\nupsert,1,a0,b0,c0\n").ok());
  // Insert with a row index.
  EXPECT_FALSE(
      ParseDeltaCsv(schema, "op,row,a,b,c\ninsert,2,a0,b0,c0\n").ok());
  // Bad row index.
  EXPECT_FALSE(
      ParseDeltaCsv(schema, "op,row,a,b,c\ndelete,x,,,\n").ok());
  // A row index past uint32 must be rejected, not silently wrapped to
  // a small valid row.
  EXPECT_FALSE(
      ParseDeltaCsv(schema, "op,row,a,b,c\ndelete,4294967296,,,\n").ok());
  // Unknown label (the model cannot infer over unseen values).
  EXPECT_FALSE(
      ParseDeltaCsv(schema, "op,row,a,b,c\ninsert,,a9,b0,c0\n").ok());
  // Short row.
  EXPECT_FALSE(ParseDeltaCsv(schema, "op,row,a,b,c\ndelete,1\n").ok());
  // An empty value cell is truncation damage, not shorthand for '?' —
  // accepting it would silently weaken the row.
  EXPECT_FALSE(
      ParseDeltaCsv(schema, "op,row,a,b,c\ninsert,,a0,,c0\n").ok());
  EXPECT_FALSE(
      ParseDeltaCsv(schema, "op,row,a,b,c\nupdate,1,a0,b0,\n").ok());
}

// A parsed delta the parser may legally return: every tuple carries the
// schema's arity and only in-domain (or missing) cells. Anything else
// escaping the parser would poison the store's write path.
void ExpectWellFormed(const Schema& schema, const RelationDelta& delta) {
  auto check_tuple = [&](const Tuple& t) {
    ASSERT_EQ(t.num_attrs(), schema.num_attrs());
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      const int v = t.value(a);
      EXPECT_GE(v, -1);
      EXPECT_LT(v, static_cast<int>(schema.attr(a).cardinality()));
    }
  };
  for (const Tuple& t : delta.inserts) check_tuple(t);
  for (const auto& u : delta.updates) check_tuple(u.tuple);
}

// The valid document the fuzz tests damage: all three ops, missing
// cells, and enough rows that cuts land everywhere.
std::string ValidDeltaCsv() {
  return "op,row,a,b,c\n"
         "insert,,a2,?,c1\n"
         "update,3,a0,b1,?\n"
         "delete,1,,,\n"
         "insert,,a0,b2,c0\n"
         "update,0,a1,?,c1\n"
         "delete,12,,,\n";
}

// Truncation property: cutting the CSV at EVERY byte either fails with
// a clean status or parses a strict prefix of the full document's rows
// — never a crash, never an invented or altered row.
TEST(ParseDeltaCsvFuzzTest, EveryTruncationFailsCleanlyOrParsesAPrefix) {
  const Schema schema = ThreeAttrSchema();
  const std::string csv = ValidDeltaCsv();
  auto full = ParseDeltaCsv(schema, csv);
  ASSERT_TRUE(full.ok());

  for (size_t keep = 0; keep < csv.size(); ++keep) {
    SCOPED_TRACE("kept " + std::to_string(keep) + " bytes");
    auto cut = ParseDeltaCsv(schema, csv.substr(0, keep));
    if (!cut.ok()) {
      EXPECT_FALSE(cut.status().message().empty());
      continue;
    }
    ExpectWellFormed(schema, *cut);
    // Whatever parsed is a prefix of the full document, element for
    // element — a cut mid-line can only drop rows, never mint them.
    ASSERT_LE(cut->inserts.size(), full->inserts.size());
    for (size_t i = 0; i < cut->inserts.size(); ++i) {
      EXPECT_EQ(cut->inserts[i], full->inserts[i]);
    }
    ASSERT_LE(cut->updates.size(), full->updates.size());
    for (size_t i = 0; i < cut->updates.size(); ++i) {
      EXPECT_EQ(cut->updates[i].row, full->updates[i].row);
      EXPECT_EQ(cut->updates[i].tuple, full->updates[i].tuple);
    }
    ASSERT_LE(cut->deletes.size(), full->deletes.size());
    for (size_t i = 0; i < cut->deletes.size(); ++i) {
      EXPECT_EQ(cut->deletes[i], full->deletes[i]);
    }
  }
}

// Mutation property: flip random bytes (any value, NUL and control
// bytes included) and parse. The parser must return — cleanly — and
// anything it accepts must still be well-formed and apply atomically.
TEST(ParseDeltaCsvFuzzTest, RandomMutationsNeverCrashOrEscapeTheDomain) {
  const Schema schema = ThreeAttrSchema();
  const std::string csv = ValidDeltaCsv();
  const Relation base = BaseRelation();
  Rng rng(20260807);

  for (int iter = 0; iter < 2000; ++iter) {
    std::string damaged = csv;
    const size_t flips = 1 + rng.UniformInt(4);
    for (size_t f = 0; f < flips; ++f) {
      damaged[rng.UniformInt(damaged.size())] =
          static_cast<char>(rng.UniformInt(256));
    }
    SCOPED_TRACE("iteration " + std::to_string(iter) + ": " + damaged);
    auto delta = ParseDeltaCsv(schema, damaged);
    if (!delta.ok()) {
      EXPECT_FALSE(delta.status().message().empty());
      continue;
    }
    ExpectWellFormed(schema, *delta);
    // Application is all-or-nothing: either a new relation comes back
    // or a clean status does; the source is immutable either way.
    auto applied = ApplyDelta(base, *delta);
    if (!applied.ok()) {
      EXPECT_FALSE(applied.status().message().empty());
    }
    ASSERT_EQ(base.num_rows(), 4u);
    EXPECT_EQ(base.row(0), T({0, 0, 0}));
  }
}

// Adversarial documents that target specific parser assumptions. None
// may crash; all must answer with a status.
TEST(ParseDeltaCsvFuzzTest, AdversarialDocumentsAreHandled) {
  const Schema schema = ThreeAttrSchema();
  const std::vector<std::string> rejected = {
      // Row index at and past the uint32 boundary games the cast.
      "op,row,a,b,c\ndelete,4294967296,,,\n",
      "op,row,a,b,c\ndelete,18446744073709551617,,,\n",
      "op,row,a,b,c\ndelete,-1,,,\n",
      "op,row,a,b,c\ndelete,0x10,,,\n",
      "op,row,a,b,c\ndelete,1e3,,,\n",
      // NUL bytes inside an op and inside a label.
      std::string("op,row,a,b,c\nins\0ert,,a0,b0,c0\n", 30),
      std::string("op,row,a,b,c\ninsert,,a\0,b0,c0\n", 30),
      // Oversized and undersized rows.
      "op,row,a,b,c\ninsert,,a0,b0,c0,extra\n",
      "op,row,a,b,c\ninsert,,a0,b0\n",
      // A 64 KiB label never allocated by any schema.
      "op,row,a,b,c\ninsert,," + std::string(65536, 'a') + ",b0,c0\n",
      // Case variants are distinct ops/labels, not fuzzy matches.
      "op,row,a,b,c\nINSERT,,a0,b0,c0\n",
      "op,row,a,b,c\ninsert,,A0,b0,c0\n",
      // Whitespace is not trimmed into validity.
      "op,row,a,b,c\ninsert,, a0,b0,c0\n",
      "op,row,a,b,c\ndelete, 1,,,\n",
      // Header games.
      "",
      "\n\n\n",
      "op,row,a,b,c",  // header only, no newline: fine to accept rows=0
      "OP,ROW,a,b,c\ninsert,,a0,b0,c0\n",
      "op,row,a,b,c,d\ninsert,,a0,b0,c0,d0\n",
  };
  for (size_t i = 0; i < rejected.size(); ++i) {
    SCOPED_TRACE("document " + std::to_string(i));
    auto delta = ParseDeltaCsv(schema, rejected[i]);
    if (!delta.ok()) {
      EXPECT_FALSE(delta.status().message().empty());
      continue;
    }
    // The few of these that may legally parse must parse to nothing or
    // to well-formed rows (e.g. the bare header).
    ExpectWellFormed(schema, *delta);
  }

  // A million-row document parses without quadratic blowup or crash
  // (the CLI reads delta files of arbitrary size).
  std::string big = "op,row,a,b,c\n";
  big.reserve(big.size() + 12 * 100000);
  for (int i = 0; i < 100000; ++i) big += "delete,1,,,\n";
  auto parsed = ParseDeltaCsv(schema, big);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->deletes.size(), 100000u);
}

// The planner must partition exactly as Engine::InferBatch does: a
// TupleDag over the raw workload, components in node-id order.
TEST(PlanIncrementalDerivationTest, MirrorsEngineComponents) {
  // Two components: {(0,0,?),(0,0,? with c known)} linked by
  // subsumption, and a singleton (1,1,?).
  std::vector<Tuple> workload = {T({0, 0, -1}), T({1, 1, -1}),
                                 T({0, -1, -1}), T({0, 0, -1})};
  IncrementalPlan plan = PlanIncrementalDerivation(
      workload, [](const std::vector<Tuple>&) { return false; });

  TupleDag dag(workload);
  auto components = dag.Components();
  ASSERT_EQ(plan.components.size(), components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    ASSERT_EQ(plan.components[c].size(), components[c].size());
    for (size_t i = 0; i < components[c].size(); ++i) {
      EXPECT_EQ(plan.components[c][i], dag.node(components[c][i]));
    }
  }
  // Nothing clean: the dirty workload is the concatenation of all
  // components in order.
  EXPECT_EQ(plan.num_dirty_components, plan.components.size());
  size_t total = 0;
  for (const auto& comp : plan.components) total += comp.size();
  EXPECT_EQ(plan.dirty_workload.size(), total);
}

TEST(PlanIncrementalDerivationTest, CleanComponentsAreSkipped) {
  std::vector<Tuple> workload = {T({0, 0, -1}), T({1, 1, -1}),
                                 T({2, 2, -1})};
  // Mark the singleton containing (1,1,?) clean.
  const Tuple clean_tuple = T({1, 1, -1});
  IncrementalPlan plan = PlanIncrementalDerivation(
      workload, [&](const std::vector<Tuple>& comp) {
        return comp.size() == 1 && comp[0] == clean_tuple;
      });
  ASSERT_EQ(plan.components.size(), 3u);
  EXPECT_EQ(plan.num_dirty_components, 2u);
  ASSERT_EQ(plan.dirty_workload.size(), 2u);
  for (const Tuple& t : plan.dirty_workload) {
    EXPECT_NE(t, clean_tuple);
  }
  // dirty[] aligns with components[].
  for (size_t c = 0; c < plan.components.size(); ++c) {
    bool is_clean_comp = plan.components[c].size() == 1 &&
                         plan.components[c][0] == clean_tuple;
    EXPECT_EQ(plan.dirty[c], !is_clean_comp);
  }
}

TEST(PlanIncrementalDerivationTest, EmptyWorkload) {
  IncrementalPlan plan = PlanIncrementalDerivation(
      {}, [](const std::vector<Tuple>&) { return true; });
  EXPECT_TRUE(plan.components.empty());
  EXPECT_TRUE(plan.dirty_workload.empty());
  EXPECT_EQ(plan.num_dirty_components, 0u);
}

TEST(TupleVectorHashTest, OrderIsPartOfIdentity) {
  TupleVectorHash h;
  std::vector<Tuple> ab = {T({0, 0, 0}), T({1, 1, 1})};
  std::vector<Tuple> ba = {T({1, 1, 1}), T({0, 0, 0})};
  EXPECT_EQ(h(ab), h(ab));
  // Engine component seeds depend on tuple order, so the cache key must
  // too (equal hashes for swapped orders would still be correct but
  // defeat the point; with this mixer they differ).
  EXPECT_NE(h(ab), h(ba));
}

}  // namespace
}  // namespace mrsl
