// Tests for string utilities, the table printer, and the wall timer.

#include <gtest/gtest.h>

#include <string>

#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace mrsl {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.25119, 2), "0.25");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("0.125", &v));
  EXPECT_DOUBLE_EQ(v, 0.125);
  EXPECT_TRUE(ParseDouble("  -3e2 ", &v));
  EXPECT_DOUBLE_EQ(v, -300.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("inf", &v));
}

TEST(StringUtilTest, ParseInt) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt("4.2", &v));
  EXPECT_FALSE(ParseInt("x", &v));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"a", "1"});
  tp.AddRow({"longer", "22"});
  std::string s = tp.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter tp({"a", "b", "c"});
  tp.AddRow({"only"});
  EXPECT_EQ(tp.num_rows(), 1u);
  EXPECT_NO_THROW(tp.ToString());
}

TEST(TablePrinterTest, CsvExport) {
  TablePrinter tp({"x", "y"});
  tp.AddRow({"1", "2"});
  EXPECT_EQ(tp.ToCsv(), "x,y\n1,2\n");
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  double e1 = t.ElapsedSeconds();
  EXPECT_GE(e1, 0.0);
  // Busy-wait a tiny amount.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.ElapsedSeconds(), e1);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace mrsl
