// Tests for BitVector, including randomized differential tests against a
// std::vector<bool> reference model.

#include "util/bitvector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace mrsl {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Count(), 0u);
  EXPECT_TRUE(bv.Empty());
  for (size_t i = 0; i < bv.size(); ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, SetGetClear) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(99));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVectorTest, SetIsIdempotent) {
  BitVector bv(10);
  bv.Set(5);
  bv.Set(5);
  EXPECT_EQ(bv.Count(), 1u);
}

TEST(BitVectorTest, AndCountMatchesMaterializedAnd) {
  BitVector a(200);
  BitVector b(200);
  for (size_t i = 0; i < 200; i += 3) a.Set(i);
  for (size_t i = 0; i < 200; i += 5) b.Set(i);
  BitVector c = a.And(b);
  EXPECT_EQ(c.Count(), a.AndCount(b));
  // Bits set in c are exactly multiples of 15.
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(c.Get(i), i % 15 == 0) << i;
  }
}

TEST(BitVectorTest, OrWith) {
  BitVector a(70);
  BitVector b(70);
  a.Set(1);
  b.Set(68);
  a.OrWith(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(68));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitVectorTest, ToIndicesAscending) {
  BitVector bv(129);
  bv.Set(128);
  bv.Set(0);
  bv.Set(64);
  auto idx = bv.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 64u);
  EXPECT_EQ(idx[2], 128u);
}

TEST(BitVectorTest, EqualityAndCopy) {
  BitVector a(50);
  a.Set(7);
  BitVector b = a;
  EXPECT_TRUE(a == b);
  b.Set(8);
  EXPECT_FALSE(a == b);
}

// ---- Randomized differential test against std::vector<bool> ----

class BitVectorRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitVectorRandomTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  const size_t n = 64 + rng.UniformInt(200);
  BitVector a(n);
  BitVector b(n);
  std::vector<bool> ra(n, false);
  std::vector<bool> rb(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.4)) {
      a.Set(i);
      ra[i] = true;
    }
    if (rng.Bernoulli(0.4)) {
      b.Set(i);
      rb[i] = true;
    }
  }
  size_t expect_and = 0;
  size_t expect_a = 0;
  for (size_t i = 0; i < n; ++i) {
    expect_a += ra[i];
    expect_and += ra[i] && rb[i];
  }
  EXPECT_EQ(a.Count(), expect_a);
  EXPECT_EQ(a.AndCount(b), expect_and);
  BitVector c = a.And(b);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(c.Get(i), ra[i] && rb[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mrsl
