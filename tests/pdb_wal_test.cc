// Tests for the write-ahead log: binary delta round-trips, the torn-
// write property (truncate a recorded log at EVERY byte boundary and
// bit-flip every byte — replay must recover exactly the durable prefix,
// never crash, and report Corruption only for genuinely torn tails),
// segment rotation/compaction, and store recovery: replaying the WAL on
// top of the last snapshot reproduces the pre-crash epochs bit for bit.

#include "pdb/wal.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bn/bayes_net.h"
#include "core/learner.h"
#include "pdb/store.h"
#include "util/csv.h"
#include "util/fault_file.h"

namespace mrsl {
namespace {

Tuple T(std::vector<int> vals) {
  Tuple t(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    t.set_value(static_cast<AttrId>(i), vals[i]);
  }
  return t;
}

Schema ThreeAttrSchema() {
  auto s = Schema::Create({Attribute("a", {"a0", "a1", "a2"}),
                           Attribute("b", {"b0", "b1", "b2"}),
                           Attribute("c", {"c0", "c1"})});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

// A fresh, empty directory under the test tmpdir (repeat runs reuse the
// tmpdir, so leftover segments must go).
std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/" + tag;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void ExpectDeltaEq(const RelationDelta& a, const RelationDelta& b) {
  ASSERT_EQ(a.inserts.size(), b.inserts.size());
  for (size_t i = 0; i < a.inserts.size(); ++i) {
    EXPECT_EQ(a.inserts[i], b.inserts[i]) << "insert " << i;
  }
  ASSERT_EQ(a.updates.size(), b.updates.size());
  for (size_t i = 0; i < a.updates.size(); ++i) {
    EXPECT_EQ(a.updates[i].row, b.updates[i].row) << "update " << i;
    EXPECT_EQ(a.updates[i].tuple, b.updates[i].tuple) << "update " << i;
  }
  EXPECT_EQ(a.deletes, b.deletes);
}

// The deltas the lightweight tests log: inserts with missing cells, an
// update, a pure delete (arity-less on the wire), and a mixed record.
std::vector<RelationDelta> SampleDeltas() {
  std::vector<RelationDelta> deltas(4);
  deltas[0].inserts.push_back(T({0, 1, -1}));
  deltas[0].inserts.push_back(T({2, -1, 1}));
  deltas[1].updates.push_back({3, T({1, 1, 0})});
  deltas[2].deletes = {0, 5};
  deltas[3].inserts.push_back(T({-1, -1, -1}));
  deltas[3].updates.push_back({1, T({0, 0, 0})});
  deltas[3].deletes.push_back(2);
  return deltas;
}

TEST(WalSyncModeTest, ParsesAndNames) {
  for (WalSyncMode mode : {WalSyncMode::kAlways, WalSyncMode::kGroup,
                           WalSyncMode::kNone}) {
    auto parsed = ParseWalSyncMode(WalSyncModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(ParseWalSyncMode("fsync").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseWalSyncMode("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeltaBinaryTest, RoundTripsEveryShape) {
  const Schema schema = ThreeAttrSchema();
  std::vector<RelationDelta> deltas = SampleDeltas();
  deltas.push_back(RelationDelta());  // empty
  for (size_t i = 0; i < deltas.size(); ++i) {
    SCOPED_TRACE("delta " + std::to_string(i));
    std::string bytes;
    SerializeDelta(&bytes, deltas[i]);
    auto back = DeserializeDelta(schema, bytes);
    ASSERT_TRUE(back.ok()) << back.status();
    ExpectDeltaEq(deltas[i], *back);
  }
}

TEST(DeltaBinaryTest, RejectsDamageCleanly) {
  const Schema schema = ThreeAttrSchema();
  RelationDelta delta;
  delta.inserts.push_back(T({0, 1, -1}));
  delta.updates.push_back({2, T({1, -1, 0})});
  delta.deletes.push_back(4);
  std::string bytes;
  SerializeDelta(&bytes, delta);

  // Every strict prefix is a clean Corruption, never a crash or a
  // partial result.
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    auto r = DeserializeDelta(schema, bytes.substr(0, keep));
    EXPECT_FALSE(r.ok()) << "kept " << keep;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << "kept " << keep;
  }
  // Trailing garbage is damage too — the frame length said otherwise.
  EXPECT_EQ(DeserializeDelta(schema, bytes + "x").status().code(),
            StatusCode::kCorruption);
  // A cell outside the attribute's domain is caught per tuple.
  {
    RelationDelta bad;
    bad.inserts.push_back(T({9, 0, 0}));
    std::string b;
    SerializeDelta(&b, bad);
    EXPECT_EQ(DeserializeDelta(schema, b).status().code(),
              StatusCode::kCorruption);
  }
  // An arity disagreeing with the schema is rejected up front.
  {
    RelationDelta two;
    Tuple t(2);
    t.set_value(0, 0);
    t.set_value(1, 0);
    two.inserts.push_back(t);
    std::string b;
    SerializeDelta(&b, two);
    EXPECT_FALSE(DeserializeDelta(schema, b).ok());
  }
}

TEST(WalTest, AppendReplayRoundTrip) {
  const Schema schema = ThreeAttrSchema();
  const std::string dir = FreshDir("wal_roundtrip");
  const std::vector<RelationDelta> deltas = SampleDeltas();

  auto wal = WriteAheadLog::Open(dir, /*base_epoch=*/1, WalSyncMode::kGroup);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < deltas.size(); ++i) {
    ASSERT_TRUE((*wal)->Append(2 + i, deltas[i]).ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_EQ((*wal)->last_epoch(), 1 + deltas.size());
  EXPECT_EQ((*wal)->stats().records_appended, deltas.size());
  EXPECT_EQ((*wal)->stats().live_records, deltas.size());
  EXPECT_EQ((*wal)->stats().syncs, 1u);
  EXPECT_EQ((*wal)->stats().segments, 1u);

  auto replay = ReplayWalDir(dir, schema);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->tail.ok());
  ASSERT_EQ(replay->records.size(), deltas.size());
  for (size_t i = 0; i < deltas.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(replay->records[i].epoch, 2 + i);
    ExpectDeltaEq(replay->records[i].delta, deltas[i]);
  }
}

TEST(WalTest, AppendRejectsNonIncreasingEpochs) {
  const std::string dir = FreshDir("wal_epochs");
  auto wal = WriteAheadLog::Open(dir, 5, WalSyncMode::kNone);
  ASSERT_TRUE(wal.ok());
  RelationDelta d;
  d.inserts.push_back(T({0, 0, 0}));
  EXPECT_FALSE((*wal)->Append(5, d).ok());  // not past the base
  ASSERT_TRUE((*wal)->Append(6, d).ok());
  EXPECT_FALSE((*wal)->Append(6, d).ok());  // repeat
  EXPECT_FALSE((*wal)->Append(4, d).ok());  // regression
  ASSERT_TRUE((*wal)->Append(9, d).ok());   // gaps within a log are fine
}

// The torn-write property: cut a recorded log at EVERY byte length.
// Replay must return exactly the records whose bytes survived whole,
// report tail-OK iff the cut landed on a record boundary, and point the
// truncation recovery at that boundary.
TEST(WalTest, TruncationAtEveryByteBoundaryRecoversTheExactPrefix) {
  const Schema schema = ThreeAttrSchema();
  const std::string dir = FreshDir("wal_torn_src");
  const std::vector<RelationDelta> deltas = SampleDeltas();

  auto wal = WriteAheadLog::Open(dir, 0, WalSyncMode::kNone);
  ASSERT_TRUE(wal.ok());
  std::vector<size_t> boundaries;  // byte offsets where k records end
  size_t offset = 8 + 4 + 8;       // magic + version + base epoch
  boundaries.push_back(offset);
  for (size_t i = 0; i < deltas.size(); ++i) {
    ASSERT_TRUE((*wal)->Append(1 + i, deltas[i]).ok());
    offset += WriteAheadLog::EncodeRecord(1 + i, deltas[i]).size();
    boundaries.push_back(offset);
  }
  const std::string seg_path = dir + "/wal-0000000000000000.log";
  auto bytes = ReadFile(seg_path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_EQ(bytes->size(), offset);

  const std::string cut_dir = FreshDir("wal_torn_cut");
  const std::string cut_path = cut_dir + "/wal-0000000000000000.log";
  for (size_t keep = 0; keep <= bytes->size(); ++keep) {
    SCOPED_TRACE("kept " + std::to_string(keep) + " bytes");
    ASSERT_TRUE(WriteFile(cut_path, bytes->substr(0, keep)).ok());
    auto replay = ReplayWalDir(cut_dir, schema);
    ASSERT_TRUE(replay.ok());  // a cut is never a hard error

    // Whole records below the cut, and nothing above it.
    size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= keep) {
      ++whole;
    }
    ASSERT_EQ(replay->records.size(), whole);
    for (size_t i = 0; i < whole; ++i) {
      EXPECT_EQ(replay->records[i].epoch, 1 + i);
      ExpectDeltaEq(replay->records[i].delta, deltas[i]);
    }

    const bool on_boundary = keep >= boundaries[0] &&
                             boundaries[whole] == keep;
    if (on_boundary) {
      EXPECT_TRUE(replay->tail.ok()) << replay->tail;
    } else {
      EXPECT_EQ(replay->tail.code(), StatusCode::kCorruption);
      EXPECT_EQ(replay->tail_path, cut_path);
      // The advertised recovery point is the last good boundary (0 for
      // a torn header — nothing in such a file was ever acknowledged).
      const uint64_t want = keep < boundaries[0] ? 0 : boundaries[whole];
      EXPECT_EQ(replay->tail_valid_bytes, want);

      // ... and truncating there makes the next replay clean.
      ASSERT_TRUE(
          TruncateWalSegment(cut_path, replay->tail_valid_bytes).ok());
      auto again = ReplayWalDir(cut_dir, schema);
      ASSERT_TRUE(again.ok());
      if (replay->tail_valid_bytes == 0) {
        // Truncated to an empty file: still a torn header, still empty.
        EXPECT_TRUE(again->records.empty());
      } else {
        EXPECT_TRUE(again->tail.ok());
        EXPECT_EQ(again->records.size(), whole);
      }
    }
  }
}

// Flip every byte of a recorded log (one at a time). Replay must never
// crash and never invent records: whatever it returns is a prefix of
// what was written, and a fully-OK tail with a damaged byte can only
// happen in the file header's base-epoch field (which no record bytes
// cover — records still verify).
TEST(WalTest, BitFlipsNeverCrashAndNeverInventRecords) {
  const Schema schema = ThreeAttrSchema();
  const std::string dir = FreshDir("wal_flip_src");
  const std::vector<RelationDelta> deltas = SampleDeltas();
  auto wal = WriteAheadLog::Open(dir, 0, WalSyncMode::kNone);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < deltas.size(); ++i) {
    ASSERT_TRUE((*wal)->Append(1 + i, deltas[i]).ok());
  }
  auto bytes = ReadFile(dir + "/wal-0000000000000000.log");
  ASSERT_TRUE(bytes.ok());

  const std::string flip_dir = FreshDir("wal_flip_cut");
  const std::string flip_path = flip_dir + "/wal-0000000000000000.log";
  size_t hard_errors = 0;
  size_t torn_tails = 0;
  for (size_t at = 0; at < bytes->size(); ++at) {
    SCOPED_TRACE("flipped byte " + std::to_string(at));
    std::string damaged = *bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x20);
    ASSERT_TRUE(WriteFile(flip_path, damaged).ok());
    auto replay = ReplayWalDir(flip_dir, schema);
    if (!replay.ok()) {
      // Bad magic / version / epoch-order damage: refuse wholesale.
      ++hard_errors;
      continue;
    }
    if (!replay->tail.ok()) ++torn_tails;
    ASSERT_LE(replay->records.size(), deltas.size());
    for (size_t i = 0; i < replay->records.size(); ++i) {
      EXPECT_EQ(replay->records[i].epoch, 1 + i);
      ExpectDeltaEq(replay->records[i].delta, deltas[i]);
    }
  }
  // Both refusal modes must actually occur over a whole-file sweep
  // (header flips -> hard errors; record flips -> checksum tails).
  EXPECT_GT(hard_errors, 0u);
  EXPECT_GT(torn_tails, 0u);
}

// A torn record in a NON-final segment cannot be a crash artifact (the
// later segment was created after it): hard error, no silent drop.
TEST(WalTest, MidLogDamageIsAHardError) {
  const Schema schema = ThreeAttrSchema();
  const std::string dir = FreshDir("wal_midlog");
  const std::vector<RelationDelta> deltas = SampleDeltas();
  {
    auto wal = WriteAheadLog::Open(dir, 0, WalSyncMode::kNone);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, deltas[0]).ok());
    ASSERT_TRUE((*wal)->Append(2, deltas[1]).ok());
  }
  {
    // A second segment on top (what a restart at epoch 2 creates).
    auto wal = WriteAheadLog::Open(dir, 2, WalSyncMode::kNone);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(3, deltas[2]).ok());
  }
  // Intact: both segments replay in order.
  auto ok_replay = ReplayWalDir(dir, schema);
  ASSERT_TRUE(ok_replay.ok());
  EXPECT_TRUE(ok_replay->tail.ok());
  ASSERT_EQ(ok_replay->records.size(), 3u);

  // Tear the FIRST segment's tail: the replay must refuse outright.
  const std::string first = dir + "/wal-0000000000000000.log";
  auto first_bytes = ReadFile(first);
  ASSERT_TRUE(first_bytes.ok());
  ASSERT_TRUE(
      WriteFile(first, first_bytes->substr(0, first_bytes->size() - 3))
          .ok());
  auto damaged = ReplayWalDir(dir, schema);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, CrossSegmentEpochRegressionIsAHardError) {
  const Schema schema = ThreeAttrSchema();
  const std::string dir = FreshDir("wal_regress");
  RelationDelta d;
  d.inserts.push_back(T({0, 0, 0}));
  {
    auto wal = WriteAheadLog::Open(dir, 0, WalSyncMode::kNone);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, d).ok());
    ASSERT_TRUE((*wal)->Append(3, d).ok());
  }
  {
    // A later segment whose first record does not advance past epoch 3.
    auto wal = WriteAheadLog::Open(dir, 1, WalSyncMode::kNone);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(2, d).ok());
  }
  auto replay = ReplayWalDir(dir, schema);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, CompactRotatesAndDeletesCoveredSegments) {
  const Schema schema = ThreeAttrSchema();
  const std::string dir = FreshDir("wal_compact");
  const std::vector<RelationDelta> deltas = SampleDeltas();
  auto opened = WriteAheadLog::Open(dir, 0, WalSyncMode::kGroup);
  ASSERT_TRUE(opened.ok());
  WriteAheadLog* wal = opened->get();
  for (size_t i = 0; i < deltas.size(); ++i) {
    ASSERT_TRUE(wal->Append(1 + i, deltas[i]).ok());
  }
  ASSERT_TRUE(wal->Sync().ok());

  // Compaction below the newest record would drop durable data.
  EXPECT_FALSE(wal->Compact(2).ok());

  ASSERT_TRUE(wal->Compact(deltas.size()).ok());
  EXPECT_EQ(wal->stats().live_records, 0u);
  EXPECT_EQ(wal->stats().live_bytes, 0u);
  EXPECT_EQ(wal->stats().segments, 1u);
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ((*segments)[0].base_epoch, deltas.size());
  auto empty_replay = ReplayWalDir(dir, schema);
  ASSERT_TRUE(empty_replay.ok());
  EXPECT_TRUE(empty_replay->tail.ok());
  EXPECT_TRUE(empty_replay->records.empty());

  // The rotated log keeps accepting and replaying appends.
  ASSERT_TRUE(wal->Append(deltas.size() + 1, deltas[0]).ok());
  ASSERT_TRUE(wal->Sync().ok());
  auto replay = ReplayWalDir(dir, schema);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].epoch, deltas.size() + 1);
}

// ---------------------------------------------------------------------
// Store recovery: snapshot + WAL == the pre-crash store, bit for bit.

class WalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    bn_ = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
    Relation train = bn_.SampleRelation(6000, &rng);
    schema_ = train.schema();
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(train, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  Tuple S(std::vector<int> vals) { return T(std::move(vals)); }

  Relation BaseRelation() {
    Relation rel(schema_);
    EXPECT_TRUE(rel.Append(S({0, 1, 2, 0})).ok());
    EXPECT_TRUE(rel.Append(S({0, 0, -1, -1})).ok());
    EXPECT_TRUE(rel.Append(S({1, 1, -1, -1})).ok());
    EXPECT_TRUE(rel.Append(S({2, 2, 0, -1})).ok());
    return rel;
  }

  StoreOptions SOpts() {
    StoreOptions so;
    so.workload.gibbs.samples = 120;
    so.workload.gibbs.burn_in = 20;
    so.workload.gibbs.seed = 4242;
    return so;
  }

  static void ExpectBitIdentical(const ProbDatabase& a,
                                 const ProbDatabase& b) {
    ASSERT_EQ(a.num_blocks(), b.num_blocks());
    for (size_t i = 0; i < a.num_blocks(); ++i) {
      const Block& ba = a.block(i);
      const Block& bb = b.block(i);
      ASSERT_EQ(ba.alternatives.size(), bb.alternatives.size())
          << "block " << i;
      for (size_t j = 0; j < ba.alternatives.size(); ++j) {
        EXPECT_EQ(ba.alternatives[j].tuple, bb.alternatives[j].tuple)
            << "block " << i << " alt " << j;
        EXPECT_EQ(ba.alternatives[j].prob, bb.alternatives[j].prob)
            << "block " << i << " alt " << j;
      }
    }
  }

  // The two deltas every recovery scenario applies on top of epoch 1.
  RelationDelta DeltaA() {
    RelationDelta d;
    d.inserts.push_back(S({1, 2, -1, -1}));
    return d;
  }
  RelationDelta DeltaB() {
    RelationDelta d;
    d.updates.push_back({0, S({2, 0, 1, 1})});
    d.deletes.push_back(3);
    return d;
  }

  BayesNet bn_;
  Schema schema_;
  MrslModel model_;
};

TEST_F(WalStoreTest, RecoveryReplaysEverythingBeyondTheSnapshot) {
  const std::string dir = FreshDir("walstore_replay");
  const std::string snap_path = dir + "/store.bin";
  const std::string late_path = dir + "/late.bin";

  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  ASSERT_TRUE(store.SaveSnapshot(snap_path).ok());

  auto opened = store.OpenWal(dir, WalSyncMode::kAlways);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->replayed_records, 0u);
  EXPECT_TRUE(store.has_wal());
  ASSERT_TRUE(store.ApplyDelta(DeltaA()).ok());
  ASSERT_TRUE(store.ApplyDelta(DeltaB()).ok());
  EXPECT_EQ(store.epoch(), 3u);
  EXPECT_EQ(store.wal_stats().records_appended, 2u);
  ASSERT_TRUE(store.SaveSnapshot(late_path).ok());  // epoch-3 image

  // "Crash": recover a second store from the OLD snapshot + the WAL.
  Engine engine2(&model_);
  BidStore recovered(&engine2, StoreOptions());
  ASSERT_TRUE(recovered.Restore(snap_path).ok());
  EXPECT_EQ(recovered.epoch(), 1u);
  auto rec = recovered.OpenWal(dir, WalSyncMode::kGroup);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->replayed_records, 2u);
  EXPECT_EQ(rec->skipped_records, 0u);
  EXPECT_FALSE(rec->torn_tail);
  EXPECT_EQ(recovered.epoch(), 3u);
  // A reopened log reports what survives on disk, not just what this
  // process appended (the /metrics gauges read these).
  EXPECT_EQ(recovered.wal_stats().live_records, 2u);
  EXPECT_GT(recovered.wal_stats().live_bytes, 0u);
  ExpectBitIdentical(store.snapshot()->database(),
                     recovered.snapshot()->database());

  // From the LATE snapshot, the same records are already covered.
  Engine engine3(&model_);
  BidStore caught_up(&engine3, StoreOptions());
  ASSERT_TRUE(caught_up.Restore(late_path).ok());
  auto skip = caught_up.OpenWal(dir, WalSyncMode::kGroup);
  ASSERT_TRUE(skip.ok()) << skip.status();
  EXPECT_EQ(skip->replayed_records, 0u);
  EXPECT_EQ(skip->skipped_records, 2u);
  EXPECT_EQ(caught_up.epoch(), 3u);

  // ... and the recovered state matches a from-scratch derivation.
  Engine engine4(&model_);
  BidStore fresh(&engine4, SOpts());
  ASSERT_TRUE(fresh.Commit(recovered.snapshot()->base()).ok());
  ExpectBitIdentical(fresh.snapshot()->database(),
                     recovered.snapshot()->database());
}

TEST_F(WalStoreTest, RecoveryDiscardsATornTailRecord) {
  const std::string dir = FreshDir("walstore_torn");
  const std::string snap_path = dir + "/store.bin";

  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  ASSERT_TRUE(store.SaveSnapshot(snap_path).ok());
  ASSERT_TRUE(store.OpenWal(dir, WalSyncMode::kAlways).ok());
  ASSERT_TRUE(store.ApplyDelta(DeltaA()).ok());
  ASSERT_TRUE(store.ApplyDelta(DeltaB()).ok());

  // Tear the final record: chop bytes off the active segment.
  const std::string seg = dir + "/wal-0000000000000001.log";
  auto bytes = ReadFile(seg);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(WriteFile(seg, bytes->substr(0, bytes->size() - 5)).ok());

  Engine engine2(&model_);
  BidStore recovered(&engine2, StoreOptions());
  ASSERT_TRUE(recovered.Restore(snap_path).ok());
  auto rec = recovered.OpenWal(dir, WalSyncMode::kGroup);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->replayed_records, 1u);  // only epoch 2 survived whole
  EXPECT_TRUE(rec->torn_tail);
  EXPECT_GT(rec->truncated_bytes, 0u);
  EXPECT_EQ(recovered.epoch(), 2u);

  // The truncation stuck: a THIRD recovery sees a clean log.
  Engine engine3(&model_);
  BidStore again(&engine3, StoreOptions());
  ASSERT_TRUE(again.Restore(snap_path).ok());
  auto rec2 = again.OpenWal(dir + "_reopen_guard", WalSyncMode::kNone);
  ASSERT_TRUE(rec2.ok());  // fresh dir: sanity that the fixture is sane
  auto replay = ReplayWalFile(seg, schema_);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->tail.ok());
  EXPECT_EQ(replay->records.size(), 1u);
}

TEST_F(WalStoreTest, RecoveryRefusesAnEpochGap) {
  const std::string dir = FreshDir("walstore_gap");
  const std::string snap_path = dir + "/store.bin";

  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  ASSERT_TRUE(store.SaveSnapshot(snap_path).ok());

  // A log whose first record is two epochs ahead of the snapshot: the
  // epoch-2 record is missing, so replaying epoch 3 would corrupt.
  {
    auto wal = WriteAheadLog::Open(dir, 1, WalSyncMode::kNone);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(3, DeltaA()).ok());
  }
  Engine engine2(&model_);
  BidStore recovered(&engine2, StoreOptions());
  ASSERT_TRUE(recovered.Restore(snap_path).ok());
  auto rec = recovered.OpenWal(dir, WalSyncMode::kGroup);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(recovered.epoch(), 1u);  // nothing was applied
}

TEST_F(WalStoreTest, CommitBypassIsRejectedWhileAWalIsAttached) {
  const std::string dir = FreshDir("walstore_commit");
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  ASSERT_TRUE(store.OpenWal(dir, WalSyncMode::kNone).ok());
  EXPECT_EQ(store.Commit(BaseRelation()).status().code(),
            StatusCode::kFailedPrecondition);
  // ApplyDelta remains the (logged) write path.
  EXPECT_TRUE(store.ApplyDelta(DeltaA()).ok());
}

TEST_F(WalStoreTest, CheckpointCompactsTheLogAndRecoveryContinues) {
  const std::string dir = FreshDir("walstore_ckpt");
  const std::string snap_path = dir + "/store.bin";

  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  ASSERT_TRUE(store.OpenWal(dir, WalSyncMode::kAlways).ok());
  ASSERT_TRUE(store.ApplyDelta(DeltaA()).ok());
  EXPECT_EQ(store.wal_stats().live_records, 1u);

  ASSERT_TRUE(store.Checkpoint(snap_path).ok());
  EXPECT_EQ(store.wal_stats().live_records, 0u);
  EXPECT_EQ(store.wal_stats().segments, 1u);

  // One more commit after the checkpoint...
  ASSERT_TRUE(store.ApplyDelta(DeltaB()).ok());
  EXPECT_EQ(store.epoch(), 3u);

  // ... and recovery = checkpoint + the one post-checkpoint record.
  Engine engine2(&model_);
  BidStore recovered(&engine2, StoreOptions());
  ASSERT_TRUE(recovered.Restore(snap_path).ok());
  EXPECT_EQ(recovered.epoch(), 2u);
  auto rec = recovered.OpenWal(dir, WalSyncMode::kGroup);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->replayed_records, 1u);
  EXPECT_EQ(recovered.epoch(), 3u);
  ExpectBitIdentical(store.snapshot()->database(),
                     recovered.snapshot()->database());
}

TEST_F(WalStoreTest, AFailedAppendLatchesTheStoreReadOnly) {
  const std::string dir = FreshDir("walstore_latch");
  Engine engine(&model_);
  BidStore store(&engine, SOpts());
  ASSERT_TRUE(store.Commit(BaseRelation()).ok());
  ASSERT_TRUE(store.OpenWal(dir, WalSyncMode::kAlways).ok());
  ASSERT_TRUE(store.ApplyDelta(DeltaA()).ok());

  // Fail the next WAL write at the fault layer.
  SetFaultHook([](const char* op, const std::string& path) {
    if (std::string_view(op) == "write" &&
        path.find("wal-") != std::string::npos) {
      return Status::IOError("injected write failure");
    }
    return Status::OK();
  });
  auto failed = store.ApplyDelta(DeltaB());
  SetFaultHook(nullptr);
  ASSERT_FALSE(failed.ok());

  // The fault is gone, but the store stays read-only: its in-memory
  // epoch ran ahead of the log, and more commits would widen the gap.
  auto after = store.ApplyDelta(DeltaB());
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kIOError);
  // Reads still work.
  EXPECT_NE(store.snapshot(), nullptr);
}

}  // namespace
}  // namespace mrsl
