// Tests for the serving metrics: counter/histogram semantics, series
// identity in the registry, Prometheus rendering, and thread safety of
// the hot path.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mrsl {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(HistogramTest, ObservationsLandInLeBuckets) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // <= 0.1
  h.Observe(0.1);    // le is inclusive
  h.Observe(0.5);    // <= 1.0
  h.Observe(100.0);  // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.1 + 0.5 + 100.0);
}

TEST(GaugeTest, SetReplacesTheValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(42.5);
  EXPECT_EQ(g.value(), 42.5);
  g.Set(1.0);  // gauges move both ways, unlike counters
  EXPECT_EQ(g.value(), 1.0);
}

TEST(MetricsRegistryTest, GaugesRenderWithTheirOwnType) {
  MetricsRegistry registry;
  registry.GetGauge("mrsl_wal_live_records", "Records in the WAL.")
      ->Set(7);
  // Same name + labels -> same series, like counters and histograms.
  EXPECT_EQ(registry.GetGauge("mrsl_wal_live_records", "Records in the WAL."),
            registry.GetGauge("mrsl_wal_live_records", "Records in the WAL."));
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE mrsl_wal_live_records gauge"),
            std::string::npos);
  EXPECT_NE(text.find("mrsl_wal_live_records 7"), std::string::npos);
}

TEST(MetricsRegistryTest, SameNameAndLabelsIsTheSameSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests", "Requests.",
                                   {{"endpoint", "/query"}});
  Counter* b = registry.GetCounter("requests", "Requests.",
                                   {{"endpoint", "/query"}});
  Counter* other = registry.GetCounter("requests", "Requests.",
                                       {{"endpoint", "/update"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
  EXPECT_EQ(other->value(), 0u);
}

TEST(MetricsRegistryTest, RendersPrometheusTextFormat) {
  MetricsRegistry registry;
  registry
      .GetCounter("mrsl_requests_total", "Requests answered.",
                  {{"endpoint", "/query"}, {"code", "200"}})
      ->Increment(3);
  Histogram* h = registry.GetHistogram("mrsl_latency_seconds",
                                       "Request latency.", {0.01, 0.1},
                                       {{"endpoint", "/query"}});
  h->Observe(0.005);
  h->Observe(0.05);
  h->Observe(5.0);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP mrsl_requests_total Requests answered.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mrsl_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("mrsl_requests_total{endpoint=\"/query\","
                      "code=\"200\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mrsl_latency_seconds histogram\n"),
            std::string::npos);
  // Bucket counts are cumulative and end in +Inf == _count.
  EXPECT_NE(text.find("mrsl_latency_seconds_bucket{endpoint=\"/query\","
                      "le=\"0.01\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mrsl_latency_seconds_bucket{endpoint=\"/query\","
                      "le=\"0.1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mrsl_latency_seconds_bucket{endpoint=\"/query\","
                      "le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("mrsl_latency_seconds_count{endpoint=\"/query\"} 3\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("c", "help", {{"k", "a\"b\\c\nd"}})->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("c{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentObservationsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits", "Hits.");
  Histogram* hist = registry.GetHistogram("lat", "Latency.", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->bucket_count(0),
            static_cast<uint64_t>(kThreads) * kPerThread / 2);
  EXPECT_DOUBLE_EQ(hist->sum(), kThreads * (kPerThread / 2) * 1.25);
}

TEST(MetricsRegistryTest, ScrapeUnderTrafficIsSafeAndConsistent) {
  // A /metrics scrape (RenderPrometheus) must be safe while many
  // threads observe existing series AND register new ones — the
  // serve-path reality: handlers mint per-endpoint series lazily while
  // Prometheus scrapes on its own schedule.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits", "Hits.");
  Histogram* hist = registry.GetHistogram("lat", "Latency.", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(0.25);
        // New series mid-scrape: same name, thread-specific label.
        registry
            .GetCounter("per_thread", "Per-thread hits.",
                        {{"t", std::to_string(t)}})
            ->Increment();
      }
    });
  }
  std::thread scraper([&]() {
    while (!done.load(std::memory_order_acquire)) {
      const std::string text = registry.RenderPrometheus();
      // Every render is a complete document: announcements precede
      // samples, and a rendered histogram always has its _count line.
      EXPECT_NE(text.find("# TYPE hits counter\n"), std::string::npos);
      const size_t type_pos = text.find("# TYPE lat histogram\n");
      EXPECT_NE(type_pos, std::string::npos);
      EXPECT_NE(text.find("lat_count", type_pos), std::string::npos);
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  const std::string final_text = registry.RenderPrometheus();
  EXPECT_NE(final_text.find("hits " +
                            std::to_string(kThreads * kPerThread) + "\n"),
            std::string::npos);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(final_text.find("per_thread{t=\"" + std::to_string(t) +
                              "\"} " + std::to_string(kPerThread) + "\n"),
              std::string::npos);
  }
}

TEST(MetricsRegistryTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds =
      MetricsRegistry::DefaultLatencyBoundsSeconds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

}  // namespace
}  // namespace mrsl
