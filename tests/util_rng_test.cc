// Tests for the deterministic RNG: reproducibility, uniformity, and the
// statistical helpers (discrete sampling, Gamma, Dirichlet).

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace mrsl {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ~5 sigma
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, SampleDiscreteMatchesWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.7, 0.01);
}

TEST(RngTest, SampleDiscreteSkipsZeroWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.SampleDiscrete(weights), 1u);
  }
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 3.0, 10.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) sum += rng.Gamma(shape);
    double mean = sum / kDraws;
    // Gamma(shape, 1) has mean == shape, variance == shape.
    EXPECT_NEAR(mean, shape, 5.0 * std::sqrt(shape / kDraws))
        << "shape=" << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(23);
  for (double alpha : {0.2, 1.0, 5.0}) {
    for (int i = 0; i < 100; ++i) {
      auto v = rng.Dirichlet(4, alpha);
      ASSERT_EQ(v.size(), 4u);
      double sum = std::accumulate(v.begin(), v.end(), 0.0);
      EXPECT_NEAR(sum, 1.0, 1e-9);
      for (double p : v) EXPECT_GE(p, 0.0);
    }
  }
}

TEST(RngTest, DirichletSymmetricMeans) {
  Rng rng(29);
  std::vector<double> mean(3, 0.0);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    auto v = rng.Dirichlet(3, 1.0);
    for (int k = 0; k < 3; ++k) mean[k] += v[k];
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(mean[k] / kDraws, 1.0 / 3.0, 0.01);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  rng.Shuffle(&v);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // astronomically unlikely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(123);
  Rng fork = a.Fork();
  // The fork differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == fork.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace mrsl
