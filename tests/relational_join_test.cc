// Tests for the PK-FK join used to exploit cross-relation correlations
// (Sec I-B).

#include "relational/join.h"

#include <gtest/gtest.h>

namespace mrsl {
namespace {

Relation Users() {
  auto rel = Relation::FromCsv(
      "uid,city\n"
      "u1,NYC\n"
      "u2,SF\n"
      "u3,NYC\n");
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

Relation Orders() {
  auto rel = Relation::FromCsv(
      "oid,uid,amount\n"
      "o1,u1,low\n"
      "o2,u2,high\n"
      "o3,u1,high\n"
      "o4,u9,low\n"   // dangling FK
      "o5,?,low\n");  // missing FK
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(PkFkJoinTest, InnerJoinMatchesKeys) {
  JoinOptions opts;
  opts.keep_unmatched = false;
  auto joined = PkFkJoin(Orders(), "uid", Users(), "uid", opts);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined->num_rows(), 3u);  // o1, o2, o3
  AttrId city = 0;
  ASSERT_TRUE(joined->schema().FindAttr("city", &city));
  // o1 and o3 belong to u1 (NYC); o2 to u2 (SF).
  EXPECT_EQ(joined->schema().attr(city).label(joined->row(0).value(city)),
            "NYC");
  EXPECT_EQ(joined->schema().attr(city).label(joined->row(1).value(city)),
            "SF");
  EXPECT_EQ(joined->schema().attr(city).label(joined->row(2).value(city)),
            "NYC");
}

TEST(PkFkJoinTest, LeftOuterKeepsUnmatchedWithMissing) {
  auto joined = PkFkJoin(Orders(), "uid", Users(), "uid");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 5u);
  AttrId city = 0;
  ASSERT_TRUE(joined->schema().FindAttr("city", &city));
  EXPECT_EQ(joined->row(3).value(city), kMissingValue);  // dangling u9
  EXPECT_EQ(joined->row(4).value(city), kMissingValue);  // missing FK
}

TEST(PkFkJoinTest, OutputSchemaOrder) {
  auto joined = PkFkJoin(Orders(), "uid", Users(), "uid");
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->schema().num_attrs(), 4u);  // oid, uid, amount, city
  EXPECT_EQ(joined->schema().attr(0).name(), "oid");
  EXPECT_EQ(joined->schema().attr(1).name(), "uid");
  EXPECT_EQ(joined->schema().attr(2).name(), "amount");
  EXPECT_EQ(joined->schema().attr(3).name(), "city");
}

TEST(PkFkJoinTest, DropKeyColumns) {
  JoinOptions opts;
  opts.drop_key_columns = true;
  auto joined = PkFkJoin(Orders(), "uid", Users(), "uid", opts);
  ASSERT_TRUE(joined.ok());
  AttrId dummy = 0;
  EXPECT_FALSE(joined->schema().FindAttr("uid", &dummy));
  EXPECT_EQ(joined->schema().num_attrs(), 3u);  // oid, amount, city
}

TEST(PkFkJoinTest, NameClashGetsSuffix) {
  auto left = Relation::FromCsv("k,v\na,1\n");
  auto right = Relation::FromCsv("k,v\na,2\n");
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto joined = PkFkJoin(*left, "k", *right, "k");
  ASSERT_TRUE(joined.ok());
  AttrId id = 0;
  EXPECT_TRUE(joined->schema().FindAttr("v", &id));
  EXPECT_TRUE(joined->schema().FindAttr("v_r", &id));
}

TEST(PkFkJoinTest, RejectsDuplicatePrimaryKey) {
  auto dup = Relation::FromCsv("uid,city\nu1,NYC\nu1,SF\n");
  ASSERT_TRUE(dup.ok());
  auto joined = PkFkJoin(Orders(), "uid", *dup, "uid");
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PkFkJoinTest, RejectsUnknownAttributes) {
  EXPECT_FALSE(PkFkJoin(Orders(), "nope", Users(), "uid").ok());
  EXPECT_FALSE(PkFkJoin(Orders(), "uid", Users(), "nope").ok());
}

TEST(PkFkJoinTest, JoinedRelationFeedsLearning) {
  // The point of the join: mined rules can now relate amount and city.
  auto joined = PkFkJoin(Orders(), "uid", Users(), "uid");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->CompleteRowIndices().size(), 3u);
  EXPECT_EQ(joined->IncompleteRowIndices().size(), 2u);
}

}  // namespace
}  // namespace mrsl
