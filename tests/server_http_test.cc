// Tests for the HTTP layer and the embedded server: incremental request
// parsing, response serialization, routing (404/405), admission control
// (503 on overload), keep-alive + pipelining, and graceful drain.

#include "server/http.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"

namespace mrsl {
namespace {

HttpParseState Parse(const std::string& wire, HttpRequest* req,
                     size_t* consumed) {
  std::string error;
  return ParseHttpRequest(wire, req, consumed, &error);
}

TEST(HttpParseTest, ParsesGetWithQueryParams) {
  HttpRequest req;
  size_t consumed = 0;
  const std::string wire =
      "GET /query?oracle=100&name=a%20b+c HTTP/1.1\r\n"
      "Host: x\r\n"
      "\r\n";
  ASSERT_EQ(Parse(wire, &req, &consumed), HttpParseState::kDone);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/query");
  EXPECT_EQ(req.QueryParam("oracle", ""), "100");
  EXPECT_EQ(req.QueryParam("name", ""), "a b c");
  EXPECT_EQ(req.QueryParam("absent", "fallback"), "fallback");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_EQ(req.headers.at("host"), "x");
}

TEST(HttpParseTest, ParsesPostBodyByContentLength) {
  HttpRequest req;
  size_t consumed = 0;
  const std::string wire =
      "POST /update HTTP/1.1\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "hello worldTRAILING";
  ASSERT_EQ(Parse(wire, &req, &consumed), HttpParseState::kDone);
  EXPECT_EQ(req.body, "hello world");
  // Pipelined bytes after the message are not consumed.
  EXPECT_EQ(consumed, wire.size() - 8);
}

TEST(HttpParseTest, IncrementalFeedNeedsMoreUntilComplete) {
  const std::string wire =
      "POST /q HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpRequest req;
    size_t consumed = 0;
    EXPECT_EQ(Parse(wire.substr(0, cut), &req, &consumed),
              HttpParseState::kNeedMore)
        << "cut at " << cut;
  }
  HttpRequest req;
  size_t consumed = 0;
  EXPECT_EQ(Parse(wire, &req, &consumed), HttpParseState::kDone);
  EXPECT_EQ(req.body, "body");
}

TEST(HttpParseTest, RejectsGarbageAndUnsupportedFeatures) {
  HttpRequest req;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseHttpRequest("garbage\r\n\r\n", &req, &consumed, &error),
            HttpParseState::kError);
  EXPECT_EQ(
      ParseHttpRequest("GET / HTTP/2.0\r\n\r\n", &req, &consumed, &error),
      HttpParseState::kError);
  EXPECT_EQ(ParseHttpRequest(
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                &req, &consumed, &error),
            HttpParseState::kError);
  EXPECT_EQ(ParseHttpRequest(
                "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", &req,
                &consumed, &error),
            HttpParseState::kError);
  // Oversized header block fails instead of buffering forever...
  std::string huge = "GET / HTTP/1.1\r\nX: ";
  huge.append(kMaxHttpHeaderBytes + 10, 'a');
  EXPECT_EQ(ParseHttpRequest(huge, &req, &consumed, &error),
            HttpParseState::kError);
  // ...and also when the terminator arrives in the same buffer — a
  // complete block past the cap is just as rejected as a partial one.
  huge += "\r\n\r\n";
  EXPECT_EQ(ParseHttpRequest(huge, &req, &consumed, &error),
            HttpParseState::kError);
}

TEST(HttpParseTest, ConnectionCloseAndHttp10Defaults) {
  HttpRequest req;
  size_t consumed = 0;
  ASSERT_EQ(Parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", &req,
                  &consumed),
            HttpParseState::kDone);
  EXPECT_FALSE(req.keep_alive);
  ASSERT_EQ(Parse("GET / HTTP/1.0\r\n\r\n", &req, &consumed),
            HttpParseState::kDone);
  EXPECT_FALSE(req.keep_alive);
  ASSERT_EQ(Parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", &req,
                  &consumed),
            HttpParseState::kDone);
  EXPECT_TRUE(req.keep_alive);
}

TEST(HttpResponseTest, SerializesStatusHeadersAndBody) {
  HttpResponse resp;
  resp.status = 503;
  resp.content_type = "text/plain";
  resp.body = "overloaded\n";
  resp.extra_headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeHttpResponse(resp, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\noverloaded\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live server behavior over a loopback socket.
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions()) {
    server_ = std::make_unique<HttpServer>(options);
    server_->Handle("GET", "/ping", [](const HttpRequest&) {
      HttpResponse resp;
      resp.body = "pong";
      return resp;
    });
    server_->Handle("POST", "/echo", [](const HttpRequest& req) {
      HttpResponse resp;
      resp.body = req.body;
      return resp;
    });
    ASSERT_TRUE(server_->Start().ok());
  }

  Result<HttpResponseMessage> Call(HttpClient* client,
                                   const std::string& method,
                                   const std::string& target,
                                   const std::string& body = "") {
    if (!client->connected()) {
      Status st = client->Connect("127.0.0.1", server_->port());
      if (!st.ok()) return st;
    }
    return client->RoundTrip(method, target, body);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerTest, RoutesAndErrorsOverRealSockets) {
  StartServer();
  HttpClient client;
  auto pong = Call(&client, "GET", "/ping");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->status, 200);
  EXPECT_EQ(pong->body, "pong");

  auto echo = Call(&client, "POST", "/echo", "payload");
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(echo->body, "payload");

  auto missing = Call(&client, "GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  auto wrong_method = Call(&client, "POST", "/ping");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
  EXPECT_EQ(wrong_method->Header("allow", ""), "GET");

  // All four answered on ONE keep-alive connection.
  EXPECT_EQ(server_->requests_served(), 4u);
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, ManyConnectionsManyRequests) {
  StartServer();
  constexpr int kClients = 8;
  constexpr int kRequests = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&]() {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        auto resp =
            client.RoundTrip("POST", "/echo", std::to_string(i));
        if (!resp.ok() || resp->status != 200 ||
            resp->body != std::to_string(i)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->requests_served(),
            static_cast<uint64_t>(kClients) * kRequests);
}

TEST_F(ServerTest, AdmissionControlSheds503WhenFull) {
  ServerOptions options;
  options.max_inflight = 1;
  server_ = std::make_unique<HttpServer>(options);

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  server_->Handle("GET", "/slow", [&](const HttpRequest&) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
    HttpResponse resp;
    resp.body = "done";
    return resp;
  });
  ASSERT_TRUE(server_->Start().ok());

  // First request occupies the only in-flight slot...
  std::thread slow_caller([&]() {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto resp = client.RoundTrip("GET", "/slow");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
  });
  while (entered.load() == 0) std::this_thread::yield();

  // ...so a second one is shed with 503 + Retry-After, instantly.
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto shed = client.RoundTrip("GET", "/slow");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status, 503);
  EXPECT_EQ(shed->Header("retry-after", ""), "1");
  EXPECT_EQ(server_->requests_shed(), 1u);

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  slow_caller.join();

  // With the slot free again the same connection is served normally.
  auto ok = client.RoundTrip("GET", "/slow");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
}

TEST_F(ServerTest, GracefulStopFinishesInFlightRequests) {
  ServerOptions options;
  server_ = std::make_unique<HttpServer>(options);
  std::atomic<int> entered{0};
  server_->Handle("GET", "/slowish", [&](const HttpRequest&) {
    entered.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    HttpResponse resp;
    resp.body = "finished";
    return resp;
  });
  ASSERT_TRUE(server_->Start().ok());

  Result<HttpResponseMessage> inflight = Status::Internal("unset");
  std::thread caller([&]() {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    inflight = client.RoundTrip("GET", "/slowish");
  });
  while (entered.load() == 0) std::this_thread::yield();

  // Stop must wait for the dispatched request and deliver its response.
  server_->Stop();
  caller.join();
  ASSERT_TRUE(inflight.ok()) << inflight.status().ToString();
  EXPECT_EQ(inflight->status, 200);
  EXPECT_EQ(inflight->body, "finished");

  // New connections are refused after Stop.
  HttpClient late;
  if (late.Connect("127.0.0.1", server_->port()).ok()) {
    EXPECT_FALSE(late.RoundTrip("GET", "/slowish").ok());
  }
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  StartServer();
  // True pipelining: both requests land in one send, so the second sits
  // buffered on the connection while the first is being handled — the
  // handback path must parse it and answer in order.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string two_requests =
      "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n"
      "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\ntwo";
  ASSERT_TRUE(HttpWriteAll(fd, two_requests).ok());

  // Read until both responses are in (each ends with its 3-/4-byte
  // body; the second body is "two").
  std::string stream;
  char chunk[4096];
  while (stream.find("pong") == std::string::npos ||
         stream.find("two") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection closed before both responses";
    stream.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  // Two 200s, in request order.
  const size_t first_status = stream.find("HTTP/1.1 200");
  const size_t second_status = stream.find("HTTP/1.1 200", first_status + 1);
  ASSERT_NE(first_status, std::string::npos);
  ASSERT_NE(second_status, std::string::npos);
  EXPECT_LT(stream.find("pong"), second_status);
  EXPECT_GT(stream.find("two"), second_status);
  EXPECT_EQ(server_->requests_served(), 2u);
}

// A client that floods error-producing requests without ever reading
// its responses must lose its connection, not wedge the IO thread: all
// other clients stay served and Stop() still returns.
TEST_F(ServerTest, ErrorFloodFromNonReadingClientDoesNotWedgeServer) {
  StartServer();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // ~8000 pipelined 404s is far more response bytes than a loopback
  // send buffer holds; the old blocking inline write would park the IO
  // thread on this socket forever.
  std::string flood;
  for (int i = 0; i < 8000; ++i) {
    flood += "GET /no-such-route HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  (void)HttpTrySendAll(fd, flood);  // best effort; we never read

  // Another client must still get served promptly.
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto resp = client.RoundTrip("GET", "/ping");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  ::close(fd);
  server_->Stop();  // and the drain still returns
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, MalformedRequestGets400AndClose) {
  StartServer();
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // HttpClient only emits valid requests, so poke the socket directly
  // via a bogus method line through RoundTrip's target (spaces break
  // the request line).
  auto resp = client.RoundTrip("GET", "/with space");
  // Either a clean 400 or a closed connection is acceptable — the
  // server must not crash or hang.
  if (resp.ok()) {
    EXPECT_EQ(resp->status, 400);
  }
  server_->Stop();
}

}  // namespace
}  // namespace mrsl
