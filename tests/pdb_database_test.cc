// Tests for the BID probabilistic database: block validation, possible
// worlds, and construction from inference output (the paper's Δt blocks,
// including the Fig 1 call-out for t12).

#include "pdb/prob_database.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "pdb/query.h"
#include "util/rng.h"

namespace mrsl {
namespace {

Schema TwoAttrSchema() {
  auto s = Schema::Create(
      {Attribute("inc", {"50K", "100K"}), Attribute("nw", {"100K", "500K"})});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST(BlockTest, TotalMass) {
  Block b;
  b.alternatives.push_back({Tuple({0, 0}), 0.25});
  b.alternatives.push_back({Tuple({1, 0}), 0.5});
  EXPECT_DOUBLE_EQ(b.TotalMass(), 0.75);
}

TEST(ProbDatabaseTest, AddCertainRequiresComplete) {
  ProbDatabase db(TwoAttrSchema());
  EXPECT_TRUE(db.AddCertain(Tuple({0, 1})).ok());
  EXPECT_FALSE(db.AddCertain(Tuple({0, kMissingValue})).ok());
  EXPECT_EQ(db.num_blocks(), 1u);
}

TEST(ProbDatabaseTest, AddBlockValidatesProbabilities) {
  ProbDatabase db(TwoAttrSchema());
  Block over;
  over.alternatives.push_back({Tuple({0, 0}), 0.7});
  over.alternatives.push_back({Tuple({1, 0}), 0.6});
  EXPECT_FALSE(db.AddBlock(over).ok());  // mass 1.3

  Block neg;
  neg.alternatives.push_back({Tuple({0, 0}), -0.1});
  EXPECT_FALSE(db.AddBlock(neg).ok());

  Block empty;
  EXPECT_FALSE(db.AddBlock(empty).ok());

  Block incomplete;
  incomplete.alternatives.push_back({Tuple({0, kMissingValue}), 0.5});
  EXPECT_FALSE(db.AddBlock(incomplete).ok());
}

TEST(ProbDatabaseTest, NumPossibleWorlds) {
  ProbDatabase db(TwoAttrSchema());
  ASSERT_TRUE(db.AddCertain(Tuple({0, 0})).ok());  // 1 choice
  Block b;
  b.alternatives.push_back({Tuple({0, 1}), 0.5});
  b.alternatives.push_back({Tuple({1, 1}), 0.5});
  ASSERT_TRUE(db.AddBlock(b).ok());  // 2 choices
  Block partial;
  partial.alternatives.push_back({Tuple({1, 0}), 0.4});
  ASSERT_TRUE(db.AddBlock(partial).ok());  // 2 choices (alt or absent)
  EXPECT_EQ(db.NumPossibleWorlds(), 4u);
}

TEST(ProbDatabaseTest, WorldProbabilitiesSumToOne) {
  ProbDatabase db(TwoAttrSchema());
  Block b1;
  b1.alternatives.push_back({Tuple({0, 0}), 0.3});
  b1.alternatives.push_back({Tuple({0, 1}), 0.7});
  ASSERT_TRUE(db.AddBlock(b1).ok());
  Block b2;
  b2.alternatives.push_back({Tuple({1, 0}), 0.6});  // mass 0.6 < 1
  ASSERT_TRUE(db.AddBlock(b2).ok());

  double total = 0.0;
  size_t worlds = 0;
  ASSERT_TRUE(db.ForEachWorld(100,
                              [&](const std::vector<const Tuple*>& world,
                                  double p) {
                                total += p;
                                ++worlds;
                                EXPECT_LE(world.size(), 2u);
                              })
                  .ok());
  EXPECT_EQ(worlds, 4u);  // 2 x 2 (second block alt-or-absent)
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ProbDatabaseTest, ForEachWorldRefusesExplosion) {
  ProbDatabase db(TwoAttrSchema());
  for (int i = 0; i < 20; ++i) {
    Block b;
    b.alternatives.push_back({Tuple({0, 0}), 0.5});
    b.alternatives.push_back({Tuple({1, 1}), 0.5});
    ASSERT_TRUE(db.AddBlock(b).ok());
  }
  auto st = db.ForEachWorld(1000, [](const auto&, double) {});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// FromInference on the paper's t12 example: Δt12 over (inc, nw) =
// [0.30, 0.45, 0.10, 0.15] becomes a 4-alternative block.
TEST(ProbDatabaseTest, FromInferenceBuildsFig1Callout) {
  auto schema = Schema::Create(
      {Attribute("age", {"20", "30", "40"}), Attribute("edu", {"HS", "MS"}),
       Attribute("inc", {"50K", "100K"}), Attribute("nw", {"100K", "500K"})});
  ASSERT_TRUE(schema.ok());
  Relation rel(*schema);
  ASSERT_TRUE(rel.Append(Tuple({0, 0, 0, 0})).ok());  // complete row
  ASSERT_TRUE(
      rel.Append(Tuple({1, 1, kMissingValue, kMissingValue})).ok());  // t12

  JointDist d12({2, 3}, {2, 2});
  d12.set_prob(d12.codec().Encode({0, 0}), 0.30);  // 50K, 100K
  d12.set_prob(d12.codec().Encode({0, 1}), 0.45);  // 50K, 500K
  d12.set_prob(d12.codec().Encode({1, 0}), 0.10);  // 100K, 100K
  d12.set_prob(d12.codec().Encode({1, 1}), 0.15);  // 100K, 500K

  auto db = ProbDatabase::FromInference(rel, {d12});
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->num_blocks(), 2u);
  EXPECT_EQ(db->block(0).alternatives.size(), 1u);
  const Block& t12 = db->block(1);
  ASSERT_EQ(t12.alternatives.size(), 4u);
  EXPECT_NEAR(t12.TotalMass(), 1.0, 1e-9);
  // The most probable completion is <30, MS, 50K, 500K> at 0.45.
  double best = 0.0;
  const Tuple* best_tuple = nullptr;
  for (const auto& alt : t12.alternatives) {
    if (alt.prob > best) {
      best = alt.prob;
      best_tuple = &alt.tuple;
    }
  }
  ASSERT_NE(best_tuple, nullptr);
  EXPECT_NEAR(best, 0.45, 1e-9);
  EXPECT_EQ(best_tuple->value(2), 0);  // inc=50K
  EXPECT_EQ(best_tuple->value(3), 1);  // nw=500K
  // Observed cells preserved in every alternative.
  for (const auto& alt : t12.alternatives) {
    EXPECT_EQ(alt.tuple.value(0), 1);
    EXPECT_EQ(alt.tuple.value(1), 1);
  }
}

TEST(ProbDatabaseTest, FromInferenceChecksAlignment) {
  auto schema = Schema::Create({Attribute("a", {"0", "1"})});
  ASSERT_TRUE(schema.ok());
  Relation rel(*schema);
  ASSERT_TRUE(rel.Append(Tuple(std::vector<ValueId>{kMissingValue})).ok());
  auto db = ProbDatabase::FromInference(rel, {});
  ASSERT_FALSE(db.ok());
}

TEST(ProbDatabaseTest, FromInferenceMinProbPrunes) {
  auto schema = Schema::Create({Attribute("a", {"0", "1", "2"})});
  ASSERT_TRUE(schema.ok());
  Relation rel(*schema);
  ASSERT_TRUE(rel.Append(Tuple(std::vector<ValueId>{kMissingValue})).ok());

  JointDist d({0}, {3});
  d.set_prob(0, 0.90);
  d.set_prob(1, 0.095);
  d.set_prob(2, 0.005);
  auto db = ProbDatabase::FromInference(rel, {d}, /*min_prob=*/0.01);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->block(0).alternatives.size(), 2u);  // 0.005 pruned
  EXPECT_NEAR(db->block(0).TotalMass(), 1.0, 1e-9);  // renormalized
}

// Regression: AddBlock tolerates floating-point mass up to 1 + 1e-6, so
// consumers of TotalMass() must clamp instead of computing a (slightly)
// negative absent probability. AbsentMass() is the clamped accessor.
TEST(ProbDatabaseTest, MassSlightlyAboveOneIsClamped) {
  ProbDatabase db(TwoAttrSchema());
  Block b;
  b.alternatives.push_back({Tuple({0, 0}), 0.5});
  b.alternatives.push_back({Tuple({1, 0}), 0.5000004});  // mass 1 + 4e-7
  ASSERT_TRUE(db.AddBlock(b).ok());
  ASSERT_GT(db.block(0).TotalMass(), 1.0);
  EXPECT_DOUBLE_EQ(db.block(0).AbsentMass(), 0.0);

  // No phantom "absent" world, and no negative world probability.
  EXPECT_EQ(db.NumPossibleWorlds(), 2u);
  double total = 0.0;
  ASSERT_TRUE(db.ForEachWorld(10,
                              [&](const std::vector<const Tuple*>&,
                                  double p) {
                                EXPECT_GE(p, 0.0);
                                total += p;
                              })
                  .ok());
  EXPECT_NEAR(total, 1.0, 1e-6);

  // World sampling never hands SampleDiscrete a negative weight and
  // always picks a real alternative.
  Rng rng(99);
  std::vector<int32_t> choices;
  for (int t = 0; t < 200; ++t) {
    SampleWorldChoices(db, &rng, &choices);
    ASSERT_EQ(choices.size(), 1u);
    EXPECT_NE(choices[0], kNoAlternative);
  }
}

TEST(ProbDatabaseTest, ToStringRendersBlocks) {
  ProbDatabase db(TwoAttrSchema());
  ASSERT_TRUE(db.AddCertain(Tuple({1, 1})).ok());
  std::string s = db.ToString();
  EXPECT_NE(s.find("1 blocks"), std::string::npos);
  EXPECT_NE(s.find("inc=100K"), std::string::npos);
  EXPECT_NE(s.find("p=1.0000"), std::string::npos);
}

// Unambiguous world signature: per-block chosen tuple values in block
// order, absent blocks marked. Alternatives are distinct across the
// fixture's blocks, so two different choice vectors never collide.
std::string WorldSignature(const ProbDatabase& db,
                           const std::vector<int32_t>& choices) {
  std::string sig;
  for (size_t b = 0; b < db.num_blocks(); ++b) {
    if (choices[b] == kNoAlternative) {
      sig += "_|";
      continue;
    }
    const Tuple& t =
        db.block(b).alternatives[static_cast<size_t>(choices[b])].tuple;
    for (AttrId a = 0; a < t.num_attrs(); ++a) {
      sig += std::to_string(t.value(a)) + ",";
    }
    sig += "|";
  }
  return sig;
}

// Property test: the enumerated world masses form a probability
// distribution, and SampleWorldChoices draws worlds at exactly those
// frequencies (within Monte-Carlo tolerance, deterministic seed).
TEST(ProbDatabaseTest, ForEachWorldMatchesSampledWorldFrequencies) {
  ProbDatabase db(TwoAttrSchema());
  ASSERT_TRUE(db.AddCertain(Tuple({0, 0})).ok());
  Block full;  // full mass, two alternatives
  full.alternatives.push_back({Tuple({0, 1}), 0.6});
  full.alternatives.push_back({Tuple({1, 0}), 0.4});
  ASSERT_TRUE(db.AddBlock(std::move(full)).ok());
  Block partial;  // 0.3 absent mass
  partial.alternatives.push_back({Tuple({1, 1}), 0.7});
  ASSERT_TRUE(db.AddBlock(std::move(partial)).ok());

  // Enumerate every world. ForEachWorld hands over chosen tuples in
  // block order with absent blocks skipped; rebuild the signature by
  // matching tuples back to blocks (alternatives are unique here).
  std::map<std::string, double> enumerated;
  double total_mass = 0.0;
  uint64_t worlds = 0;
  ASSERT_TRUE(
      db.ForEachWorld(
            64,
            [&](const std::vector<const Tuple*>& tuples, double p) {
              std::vector<int32_t> choices(db.num_blocks(),
                                           kNoAlternative);
              size_t next = 0;
              for (size_t b = 0; b < db.num_blocks(); ++b) {
                if (next < tuples.size()) {
                  const Block& block = db.block(b);
                  for (size_t j = 0; j < block.alternatives.size(); ++j) {
                    if (&block.alternatives[j].tuple == tuples[next]) {
                      choices[b] = static_cast<int32_t>(j);
                      ++next;
                      break;
                    }
                  }
                }
              }
              enumerated[WorldSignature(db, choices)] += p;
              total_mass += p;
              ++worlds;
            })
          .ok());
  EXPECT_EQ(worlds, db.NumPossibleWorlds());
  EXPECT_EQ(worlds, 4u);  // 1 * 2 * (1 + absent)
  EXPECT_NEAR(total_mass, 1.0, 1e-12);

  // Sample worlds and tally the same signatures.
  Rng rng(0xF00D);
  std::vector<int32_t> choices;
  std::map<std::string, double> freq;
  const size_t trials = 20000;
  for (size_t t = 0; t < trials; ++t) {
    SampleWorldChoices(db, &rng, &choices);
    freq[WorldSignature(db, choices)] += 1.0 / trials;
  }

  // Agreement both ways: every enumerated world is sampled at its mass,
  // and nothing outside the enumeration is ever sampled.
  for (const auto& [sig, mass] : enumerated) {
    auto it = freq.find(sig);
    double observed = it == freq.end() ? 0.0 : it->second;
    EXPECT_NEAR(observed, mass, 0.02) << "world " << sig;
  }
  for (const auto& [sig, observed] : freq) {
    EXPECT_NE(enumerated.find(sig), enumerated.end())
        << "sampled impossible world " << sig << " at " << observed;
  }
}

// Randomized fixtures: world masses always sum to 1, whatever the block
// structure (absent mass, single alternatives, epsilon overshoot).
TEST(ProbDatabaseTest, ForEachWorldMassesAlwaysSumToOne) {
  Rng rng(0x5EED);
  for (int round = 0; round < 20; ++round) {
    ProbDatabase db(TwoAttrSchema());
    const size_t blocks = 1 + rng.UniformInt(4);
    for (size_t b = 0; b < blocks; ++b) {
      Block block;
      const size_t alts = 1 + rng.UniformInt(3);
      double remaining = rng.Bernoulli(0.5) ? 1.0 : 0.9 * rng.NextDouble();
      for (size_t j = 0; j < alts; ++j) {
        Tuple t({static_cast<ValueId>(rng.UniformInt(2)),
                 static_cast<ValueId>(rng.UniformInt(2))});
        double p = (j + 1 == alts) ? remaining
                                   : remaining * 0.5 * rng.NextDouble();
        remaining -= p;
        block.alternatives.push_back({std::move(t), p});
      }
      ASSERT_TRUE(db.AddBlock(std::move(block)).ok());
    }
    double total = 0.0;
    ASSERT_TRUE(db.ForEachWorld(4096,
                                [&](const std::vector<const Tuple*>&,
                                    double p) { total += p; })
                    .ok());
    EXPECT_NEAR(total, 1.0, 1e-6) << "round " << round;
  }
}

}  // namespace
}  // namespace mrsl
