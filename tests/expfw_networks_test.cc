// Tests that the BN catalog reproduces the published Table I statistics.

#include "expfw/networks.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mrsl {
namespace {

TEST(NetworkCatalogTest, HasTwentyNetworks) {
  const auto& catalog = NetworkCatalog();
  ASSERT_EQ(catalog.size(), 20u);
  std::set<std::string> names;
  for (const auto& spec : catalog) names.insert(spec.name);
  EXPECT_EQ(names.size(), 20u);
  EXPECT_TRUE(names.count("BN1"));
  EXPECT_TRUE(names.count("BN20"));
}

TEST(NetworkCatalogTest, AttrCountsMatchTable1) {
  for (const auto& spec : NetworkCatalog()) {
    EXPECT_EQ(spec.topology.num_vars(), spec.paper_num_attrs) << spec.name;
  }
}

TEST(NetworkCatalogTest, DomainSizesMatchTable1Exactly) {
  for (const auto& spec : NetworkCatalog()) {
    EXPECT_EQ(spec.topology.DomainSize(), spec.paper_dom_size) << spec.name;
  }
}

TEST(NetworkCatalogTest, AvgCardCloseToTable1) {
  // Where the paper gives only an average, our factorization stays within
  // 0.6 of it (exact for the uniform-cardinality networks).
  for (const auto& spec : NetworkCatalog()) {
    EXPECT_NEAR(spec.topology.AvgCard(), spec.paper_avg_card, 0.6)
        << spec.name;
  }
}

TEST(NetworkCatalogTest, DepthsMatchModuloLineOffByOne) {
  for (const auto& spec : NetworkCatalog()) {
    size_t depth = spec.topology.Depth();
    if (spec.name >= "BN13" && spec.name <= "BN16") {
      // The paper counts nodes on the longest path for lines (6); we
      // count edges (5). Documented in EXPERIMENTS.md.
      EXPECT_EQ(depth, spec.paper_depth - 1) << spec.name;
    } else {
      EXPECT_EQ(depth, spec.paper_depth) << spec.name;
    }
  }
}

TEST(NetworkCatalogTest, IndependentNetworkHasNoEdges) {
  auto spec = NetworkByName("BN4");
  ASSERT_TRUE(spec.ok());
  for (AttrId v = 0; v < spec->topology.num_vars(); ++v) {
    EXPECT_TRUE(spec->topology.parents(v).empty());
  }
}

TEST(NetworkCatalogTest, CrownFamilySharesShape) {
  // BN8/BN9/BN17/BN18: single source, middles, single sink.
  for (const char* name : {"BN8", "BN9", "BN17", "BN18"}) {
    auto spec = NetworkByName(name);
    ASSERT_TRUE(spec.ok());
    const Topology& t = spec->topology;
    size_t n = t.num_vars();
    EXPECT_TRUE(t.parents(0).empty()) << name;
    EXPECT_EQ(t.parents(static_cast<AttrId>(n - 1)).size(), n - 2) << name;
    EXPECT_EQ(t.Depth(), 2u) << name;
  }
}

TEST(NetworkCatalogTest, LineFamilyIsChain) {
  for (const char* name : {"BN13", "BN14", "BN15", "BN16"}) {
    auto spec = NetworkByName(name);
    ASSERT_TRUE(spec.ok());
    const Topology& t = spec->topology;
    for (AttrId v = 1; v < t.num_vars(); ++v) {
      ASSERT_EQ(t.parents(v).size(), 1u) << name;
      EXPECT_EQ(t.parents(v)[0], v - 1) << name;
    }
  }
}

TEST(NetworkCatalogTest, CardinalitySweepFamilies) {
  // BN13-16 sweep cardinality 2/4/6/8 over the same 6-node line.
  uint32_t expect = 2;
  for (const char* name : {"BN13", "BN14", "BN15", "BN16"}) {
    auto spec = NetworkByName(name);
    ASSERT_TRUE(spec.ok());
    for (AttrId v = 0; v < 6; ++v) {
      EXPECT_EQ(spec->topology.card(v), expect) << name;
    }
    expect += 2;
  }
}

TEST(NetworkCatalogTest, LookupUnknownFails) {
  auto spec = NetworkByName("BN99");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mrsl
