// End-to-end integration tests: the full pipeline of the paper —
// generate data from a BN, learn the MRSL model, infer single- and
// multi-attribute distributions, derive the probabilistic database, and
// query it — plus the experiment runners used by the benchmarks.

#include <gtest/gtest.h>

#include "bn/exact.h"
#include "core/learner.h"
#include "core/workload.h"
#include "expfw/runner.h"
#include "pdb/query.h"

namespace mrsl {
namespace {

TEST(IntegrationTest, FullPipelineDerivesQueryableDatabase) {
  // 1) Ground truth network and data.
  auto spec = NetworkByName("BN8");
  ASSERT_TRUE(spec.ok());
  Rng rng(20110411);
  BayesNet bn = BayesNet::RandomInstance(spec->topology, &rng);
  DatasetOptions ds_opts;
  ds_opts.train_size = 9000;
  ds_opts.num_missing = 2;
  auto ds = GenerateDataset(bn, ds_opts, &rng);
  ASSERT_TRUE(ds.ok());

  // 2) Learning phase.
  LearnOptions learn;
  learn.support_threshold = 0.005;
  LearnStats stats;
  auto model = LearnModel(ds->train, learn, &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->TotalMetaRules(), 4u);

  // 3) Inference phase over the masked test relation.
  std::vector<Tuple> workload;
  for (size_t i = 0; i < 60 && i < ds->test_masked.num_rows(); ++i) {
    workload.push_back(ds->test_masked.row(i));
  }
  WorkloadOptions wl;
  wl.gibbs.burn_in = 50;
  wl.gibbs.samples = 1500;
  WorkloadStats wstats;
  auto dists = RunWorkload(*model, workload, SamplingMode::kTupleDag, wl,
                           &wstats);
  ASSERT_TRUE(dists.ok());
  EXPECT_EQ(wstats.distinct_tuples + 0u, TupleDag(workload).num_nodes());

  // Accuracy against the generating network.
  AccuracyAccumulator acc;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto truth = TrueDistribution(bn, workload[i]);
    ASSERT_TRUE(truth.ok());
    acc.Add(KlDivergence(*truth, (*dists)[i]),
            Top1Match(*truth, (*dists)[i]));
  }
  EXPECT_LT(acc.MeanKl(), 0.25);
  EXPECT_GT(acc.Top1Rate(), 0.5);

  // 4) Derive the disjoint-independent probabilistic database.
  Relation source(ds->test_masked.schema());
  for (const Tuple& t : workload) ASSERT_TRUE(source.Append(t).ok());
  auto db = ProbDatabase::FromInference(source, *dists);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_blocks(), workload.size());
  for (size_t b = 0; b < db->num_blocks(); ++b) {
    EXPECT_NEAR(db->block(b).TotalMass(), 1.0, 1e-6);
  }

  // 5) Query it: expected count is consistent with per-block marginals,
  // and the exact count distribution matches Monte Carlo.
  Predicate pred = Predicate::Eq(0, 0);
  double expected = ExpectedCount(*db, pred);
  EXPECT_GT(expected, 0.0);
  EXPECT_LT(expected, static_cast<double>(db->num_blocks()));
  auto count_dist = CountDistribution(*db, pred);
  Rng mc_rng(5);
  auto mc = MonteCarloCountDistribution(*db, pred, 50000, &mc_rng);
  double mean_exact = 0.0;
  double mean_mc = 0.0;
  for (size_t k = 0; k < count_dist.size(); ++k) {
    mean_exact += static_cast<double>(k) * count_dist[k];
    mean_mc += static_cast<double>(k) * mc[k];
  }
  EXPECT_NEAR(mean_exact, expected, 1e-9);
  EXPECT_NEAR(mean_mc, expected, 0.5);
}

TEST(IntegrationTest, LearnRunnerProducesAverages) {
  LearnExperimentConfig config;
  config.network = "BN8";
  config.train_size = 2000;
  config.support = 0.02;
  config.reps.num_instances = 2;
  config.reps.num_splits = 2;
  auto result = RunLearnExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->build_seconds, 0.0);
  EXPECT_GT(result->model_size, 0.0);
  EXPECT_GT(result->itemsets, 0.0);
}

TEST(IntegrationTest, SingleAttrRunnerAccuracy) {
  SingleAttrConfig config;
  config.network = "BN8";
  config.train_size = 10000;
  config.support = 0.001;
  config.voting.choice = VoterChoice::kBest;
  config.voting.scheme = VotingScheme::kAveraged;
  config.reps.num_instances = 2;
  config.reps.num_splits = 1;
  config.reps.max_eval_tuples = 200;
  auto result = RunSingleAttrExperiment(config);
  ASSERT_TRUE(result.ok());
  // Paper Table II for BN8 at best-averaged: KL 0.00, top-1 0.98; allow
  // slack for the smaller training set.
  EXPECT_LT(result->kl, 0.05);
  EXPECT_GT(result->top1, 0.85);
  EXPECT_GT(result->model_size, 0.0);
}

TEST(IntegrationTest, SingleAttrVotingOrdering) {
  // With ample data, best-averaged should not be worse than all-weighted
  // (Table II's dominant pattern).
  SingleAttrConfig best;
  best.network = "BN9";
  best.train_size = 10000;
  best.support = 0.001;
  best.voting = {VoterChoice::kBest, VotingScheme::kAveraged};
  best.reps.num_instances = 2;
  best.reps.num_splits = 1;
  best.reps.max_eval_tuples = 200;
  SingleAttrConfig all = best;
  all.voting = {VoterChoice::kAll, VotingScheme::kWeighted};

  auto r_best = RunSingleAttrExperiment(best);
  auto r_all = RunSingleAttrExperiment(all);
  ASSERT_TRUE(r_best.ok());
  ASSERT_TRUE(r_all.ok());
  EXPECT_LE(r_best->kl, r_all->kl + 0.01);
}

TEST(IntegrationTest, MultiAttrRunnerAccuracy) {
  MultiAttrConfig config;
  config.network = "BN8";
  config.train_size = 9000;
  config.support = 0.005;
  config.num_missing = 2;
  config.gibbs.burn_in = 50;
  config.gibbs.samples = 1000;
  config.mode = SamplingMode::kTupleDag;
  config.reps.num_instances = 1;
  config.reps.num_splits = 2;
  config.reps.max_eval_tuples = 60;
  auto result = RunMultiAttrExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->kl, 0.3);
  EXPECT_GT(result->stats.points_sampled, 0u);
  EXPECT_EQ(result->tuples_evaluated, 120u);
}

TEST(IntegrationTest, RunnerIsDeterministic) {
  SingleAttrConfig config;
  config.network = "BN8";
  config.train_size = 3000;
  config.support = 0.01;
  config.reps.num_instances = 1;
  config.reps.num_splits = 1;
  config.reps.max_eval_tuples = 50;
  auto r1 = RunSingleAttrExperiment(config);
  auto r2 = RunSingleAttrExperiment(config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->kl, r2->kl);
  EXPECT_DOUBLE_EQ(r1->top1, r2->top1);
}

}  // namespace
}  // namespace mrsl
