// Tests for Apriori mining: worked counts on the Fig 1 example, the
// round cap, anti-monotonicity, and a randomized differential test
// against a brute-force support counter.

#include "mining/apriori.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "paper_example.h"
#include "util/rng.h"

namespace mrsl {
namespace {

AprioriOptions Opts(double theta, size_t cap = 1000) {
  AprioriOptions o;
  o.support_threshold = theta;
  o.max_itemsets = cap;
  return o;
}

TEST(AprioriTest, RejectsBadThreshold) {
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();
  EXPECT_FALSE(MineFrequentItemsets(rel, rows, Opts(0.0)).ok());
  EXPECT_FALSE(MineFrequentItemsets(rel, rows, Opts(1.5)).ok());
}

TEST(AprioriTest, RejectsEmptyInput) {
  Relation rel = LoadFig1();
  auto st = MineFrequentItemsets(rel, {}, Opts(0.1));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AprioriTest, EmptyItemsetIncludedWithFullSupport) {
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();
  auto freq = MineFrequentItemsets(rel, rows, Opts(0.5));
  ASSERT_TRUE(freq.ok());
  int32_t idx = freq->Find({});
  ASSERT_NE(idx, kNoItemset);
  EXPECT_EQ(freq->entry(idx).count, rows.size());
  EXPECT_DOUBLE_EQ(freq->Support(idx), 1.0);
}

TEST(AprioriTest, SingleItemCountsMatchRelation) {
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();
  // With a minimal threshold every 1-itemset with >= 1 match appears.
  auto freq = MineFrequentItemsets(rel, rows, Opts(1e-9));
  ASSERT_TRUE(freq.ok());

  const Schema& schema = rel.schema();
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    for (size_t v = 0; v < schema.attr(a).cardinality(); ++v) {
      Tuple probe(schema.num_attrs());
      probe.set_value(a, static_cast<ValueId>(v));
      size_t expect = rel.CountMatches(probe);
      int32_t idx = freq->Find({Item{a, static_cast<ValueId>(v)}});
      if (expect == 0) {
        EXPECT_EQ(idx, kNoItemset);
      } else {
        ASSERT_NE(idx, kNoItemset);
        EXPECT_EQ(freq->entry(idx).count, expect);
      }
    }
  }
}

// The paper's Fig 2 weight: supp(edu=HS) = 0.41 over the full dataset;
// on the 8 complete points of Fig 1 it is 5/8.
TEST(AprioriTest, PairCountsMatchBruteForce) {
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();
  auto freq = MineFrequentItemsets(rel, rows, Opts(1e-9));
  ASSERT_TRUE(freq.ok());

  AttrId edu = 0;
  AttrId inc = 0;
  ASSERT_TRUE(rel.schema().FindAttr("edu", &edu));
  ASSERT_TRUE(rel.schema().FindAttr("inc", &inc));
  ValueId hs = rel.schema().attr(edu).Find("HS");
  ValueId k50 = rel.schema().attr(inc).Find("50K");
  ASSERT_NE(hs, kMissingValue);
  ASSERT_NE(k50, kMissingValue);

  ItemVec pair{Item{edu, hs}, Item{inc, k50}};
  std::sort(pair.begin(), pair.end());
  int32_t idx = freq->Find(pair);
  ASSERT_NE(idx, kNoItemset);
  // Complete points with edu=HS && inc=50K: t6, t7.
  EXPECT_EQ(freq->entry(idx).count, 2u);
}

TEST(AprioriTest, SupportThresholdFilters) {
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();  // 8 points
  // Threshold 0.5: only itemsets matching >= 4 points survive.
  auto freq = MineFrequentItemsets(rel, rows, Opts(0.5));
  ASSERT_TRUE(freq.ok());
  for (size_t i = 0; i < freq->size(); ++i) {
    EXPECT_GE(freq->entry(static_cast<int32_t>(i)).count, 4u);
  }
}

TEST(AprioriTest, AntiMonotonicity) {
  // Every subset of a frequent itemset is frequent with >= count.
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();
  auto freq = MineFrequentItemsets(rel, rows, Opts(0.1));
  ASSERT_TRUE(freq.ok());
  for (size_t i = 0; i < freq->size(); ++i) {
    const ItemsetEntry& e = freq->entry(static_cast<int32_t>(i));
    for (size_t drop = 0; drop < e.items.size(); ++drop) {
      ItemVec sub;
      for (size_t k = 0; k < e.items.size(); ++k) {
        if (k != drop) sub.push_back(e.items[k]);
      }
      int32_t idx = freq->Find(sub);
      ASSERT_NE(idx, kNoItemset);
      EXPECT_GE(freq->entry(idx).count, e.count);
    }
  }
}

TEST(AprioriTest, MaxItemsetsCapStopsMining) {
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();
  AprioriStats stats;
  // Cap of 1: round 1 will exceed it, so mining stops after round 1 but
  // keeps round 1's itemsets (plus the empty itemset).
  auto freq = MineFrequentItemsets(rel, rows, Opts(1e-9, 1), &stats);
  ASSERT_TRUE(freq.ok());
  EXPECT_TRUE(stats.capped);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(freq->MaxSize(), 1u);
}

TEST(AprioriTest, StatsPerRoundConsistent) {
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();
  AprioriStats stats;
  auto freq = MineFrequentItemsets(rel, rows, Opts(0.1), &stats);
  ASSERT_TRUE(freq.ok());
  size_t total = 1;  // empty itemset
  for (size_t c : stats.per_round) total += c;
  EXPECT_EQ(freq->size(), total);
  EXPECT_EQ(stats.per_round.size(), stats.rounds);
}

TEST(AprioriTest, HigherThresholdYieldsSubset) {
  Relation rel = LoadFig1();
  auto rows = rel.CompleteRowIndices();
  auto low = MineFrequentItemsets(rel, rows, Opts(0.1));
  auto high = MineFrequentItemsets(rel, rows, Opts(0.4));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_LE(high->size(), low->size());
  for (size_t i = 0; i < high->size(); ++i) {
    const auto& e = high->entry(static_cast<int32_t>(i));
    EXPECT_NE(low->Find(e.items), kNoItemset);
  }
}

// ---- Randomized differential test against brute-force counting ----

class AprioriRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AprioriRandomTest, CountsMatchBruteForce) {
  Rng rng(GetParam());
  // Random relation: 4 attrs x cardinality 3, 60 rows.
  auto schema = Schema::Create({Attribute("a", {"0", "1", "2"}),
                                Attribute("b", {"0", "1", "2"}),
                                Attribute("c", {"0", "1", "2"}),
                                Attribute("d", {"0", "1", "2"})});
  ASSERT_TRUE(schema.ok());
  Relation rel(*schema);
  for (int i = 0; i < 60; ++i) {
    Tuple t(4);
    for (AttrId a = 0; a < 4; ++a) {
      t.set_value(a, static_cast<ValueId>(rng.UniformInt(3)));
    }
    ASSERT_TRUE(rel.Append(std::move(t)).ok());
  }
  auto rows = rel.CompleteRowIndices();
  const double theta = 0.05;
  auto freq = MineFrequentItemsets(rel, rows, Opts(theta));
  ASSERT_TRUE(freq.ok());

  const uint64_t min_count = static_cast<uint64_t>(
      std::ceil(theta * static_cast<double>(rows.size()) - 1e-9));

  // 1) Every recorded itemset's count is exact and above threshold.
  for (size_t i = 0; i < freq->size(); ++i) {
    const ItemsetEntry& e = freq->entry(static_cast<int32_t>(i));
    Tuple probe(4);
    for (const Item& it : e.items) probe.set_value(it.attr, it.value);
    EXPECT_EQ(e.count, rel.CountMatches(probe));
    if (!e.items.empty()) {
      EXPECT_GE(e.count, min_count);
    }
  }

  // 2) Completeness for pairs: every frequent pair is recorded.
  for (AttrId a1 = 0; a1 < 4; ++a1) {
    for (AttrId a2 = a1 + 1; a2 < 4; ++a2) {
      for (ValueId v1 = 0; v1 < 3; ++v1) {
        for (ValueId v2 = 0; v2 < 3; ++v2) {
          Tuple probe(4);
          probe.set_value(a1, v1);
          probe.set_value(a2, v2);
          size_t count = rel.CountMatches(probe);
          ItemVec items{Item{a1, v1}, Item{a2, v2}};
          if (count >= min_count) {
            EXPECT_NE(freq->Find(items), kNoItemset)
                << "missing frequent pair";
          } else {
            EXPECT_EQ(freq->Find(items), kNoItemset);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriRandomTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace mrsl
