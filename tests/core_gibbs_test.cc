// Tests for the ordered Gibbs sampler: chain mechanics, determinism,
// CPD-cache transparency, and convergence to the BN ground truth.

#include "core/gibbs.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "bn/exact.h"
#include "core/learner.h"
#include "expfw/metrics.h"

namespace mrsl {
namespace {

LearnOptions LOpts(double theta) {
  LearnOptions o;
  o.support_threshold = theta;
  return o;
}

// Shared setup: a small known network and a model learned from it.
class GibbsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4242);
    bn_ = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
    train_ = bn_.SampleRelation(20000, &rng);
    auto model = LearnModel(train_, LOpts(0.001));
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  GibbsOptions GOpts(size_t samples, uint64_t seed = 7) {
    GibbsOptions g;
    g.burn_in = 50;
    g.samples = samples;
    g.seed = seed;
    return g;
  }

  BayesNet bn_;
  Relation train_;
  MrslModel model_;
};

TEST_F(GibbsTest, MakeChainValidatesInput) {
  GibbsSampler sampler(&model_, GOpts(100));
  EXPECT_FALSE(sampler.MakeChain(Tuple(3)).ok());  // wrong arity
  Tuple complete({0, 0, 0, 0});
  EXPECT_FALSE(sampler.MakeChain(complete).ok());  // nothing to sample
  Tuple t(4);
  t.set_value(0, 1);
  auto chain = sampler.MakeChain(t);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->missing, (std::vector<AttrId>{1, 2, 3}));
}

TEST_F(GibbsTest, StepAssignsAllMissing) {
  GibbsSampler sampler(&model_, GOpts(100));
  Tuple t(4);
  t.set_value(0, 1);
  auto chain = sampler.MakeChain(t);
  ASSERT_TRUE(chain.ok());
  sampler.Step(&chain.value());
  for (AttrId a = 0; a < 4; ++a) {
    EXPECT_NE(chain->state[a], kMissingValue);
  }
  EXPECT_EQ(chain->state[0], 1);  // observed cell untouched
  EXPECT_EQ(sampler.stats().cycles, 1u);
}

TEST_F(GibbsTest, InferReturnsNormalizedJoint) {
  GibbsSampler sampler(&model_, GOpts(500));
  Tuple t(4);
  t.set_value(0, 0);
  t.set_value(1, 1);
  auto dist = sampler.Infer(t);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->vars(), (std::vector<AttrId>{2, 3}));
  EXPECT_NEAR(dist->Sum(), 1.0, 1e-9);
  for (uint64_t c = 0; c < dist->size(); ++c) {
    EXPECT_GT(dist->prob(c), 0.0);  // smoothing keeps cells positive
  }
}

TEST_F(GibbsTest, DeterministicGivenSeed) {
  Tuple t(4);
  t.set_value(3, 1);
  GibbsSampler s1(&model_, GOpts(300, 99));
  GibbsSampler s2(&model_, GOpts(300, 99));
  auto d1 = s1.Infer(t);
  auto d2 = s2.Infer(t);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->probs(), d2->probs());
}

TEST_F(GibbsTest, CacheDoesNotChangeResults) {
  // The CPD cache only memoizes deterministic conditional estimates, so
  // with identical seeds the sampled stream must be identical.
  Tuple t(4);
  t.set_value(0, 1);
  GibbsOptions with_cache = GOpts(300, 5);
  with_cache.enable_cpd_cache = true;
  GibbsOptions without_cache = GOpts(300, 5);
  without_cache.enable_cpd_cache = false;

  GibbsSampler s1(&model_, with_cache);
  GibbsSampler s2(&model_, without_cache);
  auto d1 = s1.Infer(t);
  auto d2 = s2.Infer(t);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->probs(), d2->probs());
  EXPECT_GT(s1.stats().cache_hits, 0u);
  EXPECT_EQ(s2.stats().cache_hits, 0u);
  EXPECT_LT(s1.stats().cpd_evaluations, s2.stats().cpd_evaluations);
}

TEST_F(GibbsTest, ConvergesToGroundTruth) {
  // With a well-trained model, the Gibbs joint over two missing values
  // should approach the exact BN conditional.
  Rng rng(777);
  AccuracyAccumulator acc;
  GibbsSampler sampler(&model_, GOpts(2000, 31337));
  for (int trial = 0; trial < 30; ++trial) {
    Tuple t = bn_.ForwardSample(&rng);
    AttrId m1 = static_cast<AttrId>(rng.UniformInt(4));
    AttrId m2 = (m1 + 1 + static_cast<AttrId>(rng.UniformInt(3))) % 4;
    t.set_value(m1, kMissingValue);
    t.set_value(m2, kMissingValue);

    auto est = sampler.Infer(t);
    ASSERT_TRUE(est.ok());
    auto truth = TrueDistribution(bn_, t);
    ASSERT_TRUE(truth.ok());
    acc.Add(KlDivergence(*truth, *est), Top1Match(*truth, *est));
  }
  // Paper Fig 10 (BN8-class): KL around or below 0.1 at 2000 samples.
  EXPECT_LT(acc.MeanKl(), 0.12);
  EXPECT_GT(acc.Top1Rate(), 0.7);
}

TEST_F(GibbsTest, MoreSamplesImproveAccuracy) {
  Rng rng(888);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 20; ++i) {
    Tuple t = bn_.ForwardSample(&rng);
    t.set_value(1, kMissingValue);
    t.set_value(2, kMissingValue);
    tuples.push_back(std::move(t));
  }
  double kl_small = 0.0;
  double kl_large = 0.0;
  for (const Tuple& t : tuples) {
    GibbsSampler small(&model_, GOpts(50, 1));
    GibbsSampler large(&model_, GOpts(4000, 1));
    auto ds = small.Infer(t);
    auto dl = large.Infer(t);
    auto truth = TrueDistribution(bn_, t);
    ASSERT_TRUE(ds.ok());
    ASSERT_TRUE(dl.ok());
    ASSERT_TRUE(truth.ok());
    kl_small += KlDivergence(*truth, *ds);
    kl_large += KlDivergence(*truth, *dl);
  }
  EXPECT_LT(kl_large, kl_small);
}

TEST(CpdCacheTest, LookupInsertRoundTrip) {
  auto schema = Schema::Create({Attribute("a", {"0", "1"}),
                                Attribute("b", {"0", "1", "2"})});
  ASSERT_TRUE(schema.ok());
  CpdCache cache(*schema);
  ASSERT_TRUE(cache.enabled());
  uint64_t key = cache.Key({1, 2}, 0);
  EXPECT_EQ(cache.Lookup(0, key), nullptr);
  cache.Insert(0, key, Cpd(std::vector<double>{0.4, 0.6}));
  const Cpd* hit = cache.Lookup(0, key);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->prob(0), 0.4);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CpdCacheTest, KeyIgnoresOwnAttribute) {
  auto schema = Schema::Create({Attribute("a", {"0", "1"}),
                                Attribute("b", {"0", "1", "2"})});
  ASSERT_TRUE(schema.ok());
  CpdCache cache(*schema);
  EXPECT_EQ(cache.Key({0, 2}, 0), cache.Key({1, 2}, 0));
  EXPECT_NE(cache.Key({0, 1}, 0), cache.Key({0, 2}, 0));
}

TEST(CpdCacheTest, CapBoundsInsertions) {
  auto schema = Schema::Create({Attribute("a", {"0", "1"}),
                                Attribute("b", {"0", "1", "2"})});
  ASSERT_TRUE(schema.ok());
  CpdCache cache(*schema, /*max_entries_per_attr=*/2);
  cache.Insert(0, 1, Cpd(2));
  cache.Insert(0, 2, Cpd(2));
  cache.Insert(0, 3, Cpd(2));  // dropped
  EXPECT_NE(cache.Lookup(0, 1), nullptr);
  EXPECT_NE(cache.Lookup(0, 2), nullptr);
  EXPECT_EQ(cache.Lookup(0, 3), nullptr);
}

// The cap is per attribute, accounting is exact, and Clear evicts
// everything (optionally re-capping) without touching the statistics.
TEST(CpdCacheTest, CapAccountingAndClear) {
  auto schema = Schema::Create({Attribute("a", {"0", "1"}),
                                Attribute("b", {"0", "1", "2"})});
  ASSERT_TRUE(schema.ok());
  CpdCache cache(*schema, /*max_entries_per_attr=*/3);
  EXPECT_EQ(cache.max_entries_per_attr(), 3u);
  for (uint64_t key = 0; key < 10; ++key) {
    cache.Insert(0, key, Cpd(2));
    cache.Insert(1, key, Cpd(3));
  }
  EXPECT_EQ(cache.entries(0), 3u);  // capped per attribute...
  EXPECT_EQ(cache.entries(1), 3u);
  EXPECT_EQ(cache.total_entries(), 6u);  // ...not globally

  ASSERT_NE(cache.Lookup(0, 0), nullptr);
  ASSERT_EQ(cache.Lookup(0, 9), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.total_entries(), 0u);
  EXPECT_EQ(cache.max_entries_per_attr(), 3u);  // cap survives
  EXPECT_EQ(cache.Lookup(0, 0), nullptr);       // evicted
  EXPECT_EQ(cache.hits(), 1u);                  // stats survive Clear

  cache.Clear(/*new_max_entries_per_attr=*/1);
  cache.Insert(0, 1, Cpd(2));
  cache.Insert(0, 2, Cpd(2));  // over the new cap
  EXPECT_EQ(cache.entries(0), 1u);
}

// GibbsOptions.cpd_cache_max_entries reaches the sampler's cache, and an
// insert-only cache running against a tiny cap still answers correctly.
TEST_F(GibbsTest, SamplerHonorsCacheCapAndStaysCorrect) {
  Tuple t(4);
  t.set_value(0, 0);

  GibbsOptions uncapped = GOpts(400);
  GibbsSampler reference(&model_, uncapped);
  auto expected = reference.Infer(t);
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(reference.cache().total_entries(), 2u);

  GibbsOptions capped = GOpts(400);
  capped.cpd_cache_max_entries = 2;
  GibbsSampler sampler(&model_, capped);
  auto dist = sampler.Infer(t);
  ASSERT_TRUE(dist.ok());
  EXPECT_LE(sampler.cache().entries(1), 2u);
  EXPECT_EQ(dist->probs(), expected->probs());  // cap never alters results
}

// Reconfigure re-aims a persistent sampler: the warm CPD cache must be
// invisible in the output, and a voting change must invalidate it.
TEST_F(GibbsTest, ReconfigureReusesCacheWithoutChangingResults) {
  Tuple t(4);
  t.set_value(0, 0);

  GibbsOptions opts = GOpts(500, /*seed=*/31);
  GibbsSampler fresh(&model_, opts);
  auto cold = fresh.Infer(t);
  ASSERT_TRUE(cold.ok());

  // Warm a sampler on a different stream, then re-aim it at `opts`.
  GibbsSampler reused(&model_, GOpts(500, /*seed=*/99));
  ASSERT_TRUE(reused.Infer(t).ok());
  EXPECT_GT(reused.cache().total_entries(), 0u);
  reused.Reconfigure(opts);
  EXPECT_GT(reused.cache().total_entries(), 0u);  // cache kept warm
  auto warm = reused.Infer(t);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->probs(), cold->probs());

  // A different voting method computes different conditionals: the old
  // entries must not survive.
  GibbsOptions other_voting = opts;
  other_voting.voting.choice = VoterChoice::kAll;
  reused.Reconfigure(other_voting);
  EXPECT_EQ(reused.cache().total_entries(), 0u);
  GibbsSampler all_fresh(&model_, other_voting);
  auto a = reused.Infer(t);
  auto b = all_fresh.Infer(t);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->probs(), b->probs());
}

}  // namespace
}  // namespace mrsl
