// Tests for most-probable-completion repair.

#include "core/repair.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "core/learner.h"
#include "expfw/datagen.h"

namespace mrsl {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31);
    bn_ = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng,
                                   /*alpha=*/0.4);  // skewed => repairable
    original_ = bn_.SampleRelation(6000, &rng);
    damaged_ = Relation(original_.schema());
    Rng mask_rng(32);
    for (const Tuple& row : original_.rows()) {
      Tuple copy = row;
      if (mask_rng.Bernoulli(0.3)) {
        copy.set_value(static_cast<AttrId>(mask_rng.UniformInt(4)),
                       kMissingValue);
        if (mask_rng.Bernoulli(0.3)) {
          copy.set_value(static_cast<AttrId>(mask_rng.UniformInt(4)),
                         kMissingValue);
        }
      }
      ASSERT_TRUE(damaged_.Append(std::move(copy)).ok());
    }
    LearnOptions lo;
    lo.support_threshold = 0.005;
    auto model = LearnModel(damaged_, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  RepairOptions ROpts() {
    RepairOptions o;
    o.workload.gibbs.samples = 500;
    o.workload.gibbs.burn_in = 50;
    return o;
  }

  BayesNet bn_;
  Relation original_;
  Relation damaged_;
  MrslModel model_;
};

TEST_F(RepairTest, RepairsEveryIncompleteRow) {
  RepairStats stats;
  auto repaired = RepairRelation(model_, damaged_, ROpts(), &stats);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->num_rows(), damaged_.num_rows());
  EXPECT_EQ(repaired->IncompleteRowIndices().size(), 0u);
  EXPECT_EQ(stats.repaired, damaged_.IncompleteRowIndices().size());
  EXPECT_EQ(stats.skipped_low_conf, 0u);
  EXPECT_GT(stats.mean_confidence, 0.0);
  EXPECT_LE(stats.mean_confidence, 1.0);
}

TEST_F(RepairTest, CompleteRowsPassThroughUnchanged) {
  auto repaired = RepairRelation(model_, damaged_, ROpts());
  ASSERT_TRUE(repaired.ok());
  for (size_t r = 0; r < damaged_.num_rows(); ++r) {
    if (damaged_.row(r).IsComplete()) {
      EXPECT_EQ(repaired->row(r), damaged_.row(r));
    } else {
      // Observed cells survive the repair.
      EXPECT_TRUE(damaged_.row(r).MatchedBy(repaired->row(r)));
    }
  }
}

TEST_F(RepairTest, RepairBeatsRandomGuessing) {
  auto repaired = RepairRelation(model_, damaged_, ROpts());
  ASSERT_TRUE(repaired.ok());
  size_t cells = 0;
  size_t correct = 0;
  for (size_t r = 0; r < damaged_.num_rows(); ++r) {
    const Tuple& before = damaged_.row(r);
    if (before.IsComplete()) continue;
    for (AttrId a : before.MissingAttrs()) {
      ++cells;
      correct += repaired->row(r).value(a) == original_.row(r).value(a);
    }
  }
  ASSERT_GT(cells, 100u);
  // Binary attributes: random guessing scores 0.5; skewed CPTs make the
  // most probable completion much better.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(cells),
            0.65);
}

TEST_F(RepairTest, ConfidenceGuardrailSkips) {
  RepairOptions opts = ROpts();
  opts.min_confidence = 1.01;  // impossible: skip everything
  RepairStats stats;
  auto repaired = RepairRelation(model_, damaged_, opts, &stats);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(stats.repaired, 0u);
  EXPECT_EQ(stats.skipped_low_conf,
            damaged_.IncompleteRowIndices().size());
  EXPECT_EQ(repaired->IncompleteRowIndices().size(),
            damaged_.IncompleteRowIndices().size());
}

TEST_F(RepairTest, NoIncompleteRowsIsNoop) {
  RepairStats stats;
  auto repaired = RepairRelation(model_, original_, ROpts(), &stats);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(stats.repaired, 0u);
  EXPECT_EQ(repaired->num_rows(), original_.num_rows());
}

}  // namespace
}  // namespace mrsl
