// Tests for the extensional plan algebra (pdb/plan.h): per-operator
// probability rules (independent vs. disjoint union, join products,
// same-block intersections, absent-mass handling), the safety check and
// its dissociation bounds, the plan parser, hand-computed fixtures on
// the paper's Fig 1 example, and the determinism contract of the
// Monte-Carlo plan oracle.

#include "pdb/plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>

#include "oracle_harness.h"
#include "paper_example.h"
#include "pdb/query.h"
#include "util/rng.h"

namespace mrsl {
namespace {

using oracle_harness::ForEachWorldChoices;
using oracle_harness::SmallDb;
using oracle_harness::TrueMarginal;
using oracle_harness::TwoAttrSchema;

TEST(ProbIntervalTest, ExactAndBounds) {
  ProbInterval e = ProbInterval::Exact(0.25);
  EXPECT_TRUE(e.exact());
  EXPECT_EQ(e.ToString(), "0.2500");
  ProbInterval b = ProbInterval::Bounds(0.2, 0.6);
  EXPECT_FALSE(b.exact());
  EXPECT_DOUBLE_EQ(b.mid(), 0.4);
  EXPECT_EQ(b.ToString(), "[0.2000, 0.6000]");
}

TEST(PlanTest, ScanProducesEveryAlternativeExactly) {
  ProbDatabase db = SmallDb();
  auto result = EvaluatePlan(*ScanPlan(0), {&db});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  ASSERT_EQ(result->rows.size(), 5u);
  for (const PlanRow& row : result->rows) {
    EXPECT_TRUE(row.prob.exact());
    EXPECT_TRUE(row.lineage.simple);
    EXPECT_EQ(row.lineage.blocks.size(), 1u);
  }
  EXPECT_DOUBLE_EQ(result->rows[0].prob.lo, 1.0);
  EXPECT_DOUBLE_EQ(result->rows[1].prob.lo, 0.3);
  EXPECT_DOUBLE_EQ(result->rows[4].prob.lo, 0.4);
}

TEST(PlanTest, ScanValidatesSource) {
  ProbDatabase db = SmallDb();
  EXPECT_FALSE(EvaluatePlan(*ScanPlan(3), {&db}).ok());
  EXPECT_FALSE(PlanOutputSchema(*ScanPlan(1), {&db}).ok());
}

TEST(PlanTest, SelectFiltersRowsWithoutChangingProbabilities) {
  ProbDatabase db = SmallDb();
  auto plan = SelectPlan(Predicate::Eq(0, 1), ScanPlan(0));  // inc=100K
  auto result = EvaluatePlan(*plan, {&db});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_DOUBLE_EQ(result->rows[0].prob.lo, 1.0);
  EXPECT_DOUBLE_EQ(result->rows[1].prob.lo, 0.7);
  EXPECT_DOUBLE_EQ(result->rows[2].prob.lo, 0.4);
}

TEST(PlanTest, ProjectDisjointUnionWithinBlock) {
  // Two alternatives of one block projecting to the same value: the
  // disjoint-union rule adds their probabilities, exactly.
  ProbDatabase db(TwoAttrSchema());
  Block b;
  b.alternatives.push_back({Tuple({0, 0}), 0.3});
  b.alternatives.push_back({Tuple({0, 1}), 0.4});
  ASSERT_TRUE(db.AddBlock(b).ok());
  auto result = EvaluatePlan(*ProjectPlan({0}, ScanPlan(0)), {&db});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_TRUE(result->rows[0].prob.exact());
  EXPECT_NEAR(result->rows[0].prob.lo, 0.7, 1e-12);
  // The merged event is still a simple alternative set of the block, so
  // downstream same-block combinations stay exact.
  EXPECT_TRUE(result->rows[0].lineage.simple);
  EXPECT_EQ(result->rows[0].lineage.alts.size(), 2u);
}

TEST(PlanTest, ProjectIndependentUnionAcrossBlocks) {
  // Two independent blocks each projecting to inc=50K with prob 0.5:
  // P = 1 - 0.5 * 0.5 = 0.75, exactly.
  ProbDatabase db(TwoAttrSchema());
  for (int i = 0; i < 2; ++i) {
    Block b;
    b.alternatives.push_back({Tuple({0, 0}), 0.5});
    b.alternatives.push_back({Tuple({1, 0}), 0.5});
    ASSERT_TRUE(db.AddBlock(b).ok());
  }
  auto result = EvaluatePlan(*ProjectPlan({0}, ScanPlan(0)), {&db});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  std::map<ValueId, double> by_value;
  for (const PlanRow& row : result->rows) {
    EXPECT_TRUE(row.prob.exact());
    by_value[row.tuple.value(0)] = row.prob.lo;
  }
  EXPECT_NEAR(by_value[0], 0.75, 1e-12);
  EXPECT_NEAR(by_value[1], 0.75, 1e-12);
}

TEST(PlanTest, ProjectMatchesProjectDistinct) {
  // The plan operator agrees with the standalone ProjectDistinct on a
  // single-relation projection (both exact here).
  ProbDatabase db = SmallDb();
  auto result = EvaluatePlan(*ProjectPlan({1}, ScanPlan(0)), {&db});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  auto expected = ProjectDistinct(db, {1});
  ASSERT_EQ(result->rows.size(), expected.size());
  std::map<ValueId, double> plan_probs;
  std::map<ValueId, double> query_probs;
  for (const PlanRow& row : result->rows) {
    plan_probs[row.tuple.value(0)] = row.prob.lo;
  }
  for (const ProbTuple& pt : expected) {
    query_probs[pt.tuple.value(0)] = pt.prob;
  }
  for (const auto& [v, p] : query_probs) {
    EXPECT_NEAR(plan_probs[v], p, 1e-12) << "value " << v;
  }
}

TEST(PlanTest, ProjectHandlesAbsentMassBlocks) {
  // A lone block with mass 0.9: the projected tuple appears with
  // probability 0.9, not 1 — absence must be accounted for.
  ProbDatabase db(TwoAttrSchema());
  Block b;
  b.alternatives.push_back({Tuple({0, 1}), 0.5});
  b.alternatives.push_back({Tuple({1, 1}), 0.4});
  ASSERT_TRUE(db.AddBlock(b).ok());
  auto result = EvaluatePlan(*ProjectPlan({1}, ScanPlan(0)), {&db});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_TRUE(result->rows[0].prob.exact());
  EXPECT_NEAR(result->rows[0].prob.lo, 0.9, 1e-12);
  EXPECT_NEAR(TrueMarginal(*ProjectPlan({1}, ScanPlan(0)), db,
                           Tuple(std::vector<ValueId>{1})),
              0.9, 1e-12);
}

TEST(PlanTest, JoinOfIndependentSourcesMultiplies) {
  // Certain x uncertain across two databases: probabilities multiply.
  ProbDatabase left(TwoAttrSchema());
  ASSERT_TRUE(left.AddCertain(Tuple({0, 0})).ok());
  ProbDatabase right(TwoAttrSchema());
  Block rb;
  rb.alternatives.push_back({Tuple({0, 1}), 0.5});
  rb.alternatives.push_back({Tuple({1, 1}), 0.4});
  ASSERT_TRUE(right.AddBlock(rb).ok());

  auto plan = JoinPlan(ScanPlan(0), ScanPlan(1), 0, 0);  // inc == inc
  auto result = EvaluatePlan(*plan, {&left, &right});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_TRUE(result->rows[0].prob.exact());
  EXPECT_NEAR(result->rows[0].prob.lo, 1.0 * 0.5, 1e-12);
  EXPECT_EQ(result->schema.num_attrs(), 4u);
  AttrId id = 0;
  EXPECT_TRUE(result->schema.FindAttr("inc_r", &id));
}

TEST(PlanTest, SelfJoinSameBlockIntersectsAlternatives) {
  // Joining a database with itself: same-block row pairs are disjoint
  // alternatives — their conjunction is the alternative-set
  // intersection, so matching pairs keep their single-alternative
  // probability and mismatched pairs vanish. Still exact (safe).
  ProbDatabase db(TwoAttrSchema());
  Block b;
  b.alternatives.push_back({Tuple({0, 0}), 0.3});
  b.alternatives.push_back({Tuple({0, 1}), 0.4});  // same inc, different nw
  ASSERT_TRUE(db.AddBlock(b).ok());

  auto plan = JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0);  // inc == inc
  auto result = EvaluatePlan(*plan, {&db});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  // Four candidate pairs; the two cross-alternative ones are impossible.
  ASSERT_EQ(result->rows.size(), 2u);
  for (const PlanRow& row : result->rows) {
    EXPECT_TRUE(row.prob.exact());
    // (alt x same alt) keeps the alternative's probability: x AND x = x.
    EXPECT_TRUE(std::abs(row.prob.lo - 0.3) < 1e-12 ||
                std::abs(row.prob.lo - 0.4) < 1e-12);
  }
  // Enumeration agrees.
  for (const PlanRow& row : result->rows) {
    EXPECT_NEAR(TrueMarginal(*plan, db, row.tuple), row.prob.lo, 1e-12);
  }
}

TEST(PlanTest, UnsafePlanYieldsBoundsThatBracketTruth) {
  // project(nw; join(scan, scan; inc=inc)) over one source: the join
  // rows grouped under one nw value share base blocks, so the project
  // must dissociate — and its [lo, hi] must bracket the enumerated
  // truth.
  ProbDatabase db(TwoAttrSchema());
  Block b1;
  b1.alternatives.push_back({Tuple({0, 0}), 0.3});
  b1.alternatives.push_back({Tuple({1, 0}), 0.7});
  ASSERT_TRUE(db.AddBlock(b1).ok());
  Block b2;
  b2.alternatives.push_back({Tuple({0, 1}), 0.5});
  b2.alternatives.push_back({Tuple({1, 1}), 0.4});
  ASSERT_TRUE(db.AddBlock(b2).ok());

  auto plan = ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));
  auto result = EvaluatePlan(*plan, {&db});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->safe);
  ASSERT_FALSE(result->rows.empty());
  bool some_bounds = false;
  for (const PlanRow& row : result->rows) {
    double truth = TrueMarginal(*plan, db, row.tuple);
    EXPECT_LE(row.prob.lo - 1e-9, truth)
        << row.tuple.ToString(result->schema);
    EXPECT_GE(row.prob.hi + 1e-9, truth)
        << row.tuple.ToString(result->schema);
    some_bounds = some_bounds || !row.prob.exact();
  }
  EXPECT_TRUE(some_bounds);
}

TEST(PlanTest, ExistsMatchesEnumeration) {
  ProbDatabase db = SmallDb();
  for (const Predicate& pred :
       {Predicate::Eq(0, 0), Predicate::Eq(1, 1),
        Predicate::Eq(0, 1).And(Predicate::Eq(1, 0))}) {
    auto plan = SelectPlan(pred, ScanPlan(0));
    auto exists = EvaluateExists(*plan, {&db});
    ASSERT_TRUE(exists.ok());
    EXPECT_TRUE(exists->safe);
    EXPECT_TRUE(exists->prob.exact());
    // The legacy single-relation evaluator is the reference.
    EXPECT_NEAR(exists->prob.lo, ProbExists(db, pred), 1e-12);
  }
}

TEST(PlanTest, CountDistributionMatchesLegacyEvaluator) {
  ProbDatabase db = SmallDb();
  Predicate pred = Predicate::Eq(1, 1);  // nw=500K
  auto count = EvaluateCount(*SelectPlan(pred, ScanPlan(0)), {&db});
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(count->safe);
  EXPECT_TRUE(count->expected.exact());
  EXPECT_NEAR(count->expected.lo, ExpectedCount(db, pred), 1e-12);
  ASSERT_TRUE(count->has_distribution);
  auto expected = CountDistribution(db, pred);
  // The plan DP only emits Bernoullis for blocks that still have rows,
  // so its distribution may be shorter; compare entrywise.
  for (size_t k = 0; k < expected.size(); ++k) {
    double got = k < count->distribution.size() ? count->distribution[k]
                                                : 0.0;
    EXPECT_NEAR(got, expected[k], 1e-12) << "count=" << k;
  }
}

TEST(PlanTest, CountExpectationExactEvenOnUnsafePlans) {
  // Expected bag count is a sum of row probabilities (linearity), so a
  // safe join keeps it exact and enumeration must agree.
  ProbDatabase db(TwoAttrSchema());
  Block b1;
  b1.alternatives.push_back({Tuple({0, 0}), 0.3});
  b1.alternatives.push_back({Tuple({1, 0}), 0.7});
  ASSERT_TRUE(db.AddBlock(b1).ok());
  Block b2;
  b2.alternatives.push_back({Tuple({0, 1}), 0.5});
  ASSERT_TRUE(db.AddBlock(b2).ok());

  auto plan = JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0);
  auto count = EvaluateCount(*plan, {&db});
  ASSERT_TRUE(count.ok());
  double truth = 0.0;
  ForEachWorldChoices(db, [&](const std::vector<int32_t>& choices,
                              double p) {
    auto bag = EvaluatePlanInWorld(*plan, {&db}, {choices});
    ASSERT_TRUE(bag.ok());
    truth += p * static_cast<double>(bag->size());
  });
  EXPECT_LE(count->expected.lo - 1e-9, truth);
  EXPECT_GE(count->expected.hi + 1e-9, truth);
  if (count->expected.exact()) {
    EXPECT_NEAR(count->expected.lo, truth, 1e-9);
  }
}

// --- Hand-computed fixtures on the paper's Fig 1 example -----------------

class PaperExamplePlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation rel = LoadFig1();
    ASSERT_GT(rel.num_rows(), 0u);
    schema_ = rel.schema();
    // Resolve value ids from labels (FromCsv assigns by first
    // appearance, so never hardcode).
    age20_ = Find("age", "20");
    age40_ = Find("age", "40");
    hs_ = Find("edu", "HS");
    bs_ = Find("edu", "BS");
    inc50_ = Find("inc", "50K");
    inc100_ = Find("inc", "100K");
    nw100_ = Find("nw", "100K");
    nw500_ = Find("nw", "500K");
    ASSERT_TRUE(schema_.FindAttr("inc", &inc_attr_));
    ASSERT_TRUE(schema_.FindAttr("nw", &nw_attr_));
    ASSERT_TRUE(schema_.FindAttr("edu", &edu_attr_));

    db_ = ProbDatabase(schema_);
    // Certain rows t2 and t4 of Fig 1.
    ASSERT_TRUE(db_.AddCertain(Tuple({age20_, bs_, inc50_, nw100_})).ok());
    ASSERT_TRUE(db_.AddCertain(Tuple({age20_, hs_, inc100_, nw500_})).ok());
    // Hand-made Δt for t1 = (20, HS, ?, ?).
    Block t1;
    t1.alternatives.push_back({Tuple({age20_, hs_, inc50_, nw100_}), 0.5});
    t1.alternatives.push_back({Tuple({age20_, hs_, inc50_, nw500_}), 0.3});
    t1.alternatives.push_back({Tuple({age20_, hs_, inc100_, nw500_}), 0.2});
    ASSERT_TRUE(db_.AddBlock(t1).ok());
    // Hand-made Δt for t16 = (40, HS, ?, 500K).
    Block t16;
    t16.alternatives.push_back({Tuple({age40_, hs_, inc50_, nw500_}), 0.7});
    t16.alternatives.push_back({Tuple({age40_, hs_, inc100_, nw500_}), 0.3});
    ASSERT_TRUE(db_.AddBlock(t16).ok());
  }

  ValueId Find(const std::string& attr, const std::string& label) {
    AttrId id = 0;
    EXPECT_TRUE(schema_.FindAttr(attr, &id));
    ValueId v = schema_.attr(id).Find(label);
    EXPECT_NE(v, kMissingValue) << attr << "=" << label;
    return v;
  }

  Schema schema_;
  ProbDatabase db_;
  ValueId age20_ = 0, age40_ = 0, hs_ = 0, bs_ = 0;
  ValueId inc50_ = 0, inc100_ = 0, nw100_ = 0, nw500_ = 0;
  AttrId inc_attr_ = 0, nw_attr_ = 0, edu_attr_ = 0;
};

TEST_F(PaperExamplePlanTest, HandComputedExistsAndCount) {
  // Q: inc = 50K AND nw = 500K. t2/t4 fail; t1 contributes 0.3, t16
  // contributes 0.7. Hand-computed: P(exists) = 1 - 0.7*0.3 = 0.79,
  // E[count] = 1.0, count distribution (0.21, 0.58, 0.21).
  Predicate pred = Predicate::Eq(inc_attr_, inc50_)
                       .And(Predicate::Eq(nw_attr_, nw500_));
  auto plan = SelectPlan(pred, ScanPlan(0));
  auto exists = EvaluateExists(*plan, {&db_});
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(exists->prob.exact());
  EXPECT_NEAR(exists->prob.lo, 0.79, 1e-12);

  auto count = EvaluateCount(*plan, {&db_});
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(count->expected.lo, 1.0, 1e-12);
  ASSERT_TRUE(count->has_distribution);
  ASSERT_GE(count->distribution.size(), 3u);
  EXPECT_NEAR(count->distribution[0], 0.21, 1e-12);
  EXPECT_NEAR(count->distribution[1], 0.58, 1e-12);
  EXPECT_NEAR(count->distribution[2], 0.21, 1e-12);
}

TEST_F(PaperExamplePlanTest, HandComputedProjection) {
  // π_inc over σ_nw=500K: inc=50K appears iff t1 picks its 0.3
  // alternative or t16 its 0.7 one: 1 - 0.7*0.3 = 0.79. inc=100K is
  // certain through t4.
  auto plan = ProjectPlan(
      {inc_attr_},
      SelectPlan(Predicate::Eq(nw_attr_, nw500_), ScanPlan(0)));
  auto result = EvaluatePlan(*plan, {&db_});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  std::map<ValueId, double> by_value;
  for (const PlanRow& row : result->rows) {
    EXPECT_TRUE(row.prob.exact());
    by_value[row.tuple.value(0)] = row.prob.lo;
  }
  EXPECT_NEAR(by_value[inc50_], 0.79, 1e-12);
  EXPECT_NEAR(by_value[inc100_], 1.0, 1e-12);
}

TEST_F(PaperExamplePlanTest, ParserRoundTripsOnPaperSchema) {
  std::vector<const ProbDatabase*> sources = {&db_};
  auto parsed = ParsePlan(
      "count(select(inc=50K & nw=500K; scan))", sources);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, ParsedQuery::Kind::kCount);
  auto count = EvaluateCount(*parsed->plan, sources);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(count->expected.lo, 1.0, 1e-12);

  // PlanToString output parses back to the same answers.
  auto rendered = PlanToString(*parsed->plan, sources);
  ASSERT_TRUE(rendered.ok());
  auto reparsed = ParsePlan(*rendered, sources);
  ASSERT_TRUE(reparsed.ok()) << *rendered;
  auto again = EvaluateCount(*reparsed->plan, sources);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->expected.lo, count->expected.lo);
}

// --- Parser ---------------------------------------------------------------

TEST(PlanParserTest, ParsesNestedPlans) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  auto parsed = ParsePlan(
      "project(nw; select(inc=100K; join(scan(0); scan(0); inc=inc)))",
      sources);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, ParsedQuery::Kind::kRelation);
  auto schema = PlanOutputSchema(*parsed->plan, sources);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attrs(), 1u);
  EXPECT_EQ(schema->attr(0).name(), "nw");
  EXPECT_TRUE(EvaluatePlan(*parsed->plan, sources).ok());
}

TEST(PlanParserTest, ParsesExistsAndBareScan) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  auto exists = ParsePlan("exists(select(true; scan))", sources);
  ASSERT_TRUE(exists.ok());
  EXPECT_EQ(exists->kind, ParsedQuery::Kind::kExists);
  auto bare = ParsePlan("  scan  ", sources);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->kind, ParsedQuery::Kind::kRelation);
  EXPECT_EQ(bare->plan->op, PlanNode::Op::kScan);
}

TEST(PlanParserTest, RejectsMalformedInput) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  EXPECT_FALSE(ParsePlan("frobnicate(scan)", sources).ok());
  EXPECT_FALSE(ParsePlan("select(inc=100K; scan", sources).ok());
  EXPECT_FALSE(ParsePlan("select(bogus=1; scan)", sources).ok());
  EXPECT_FALSE(ParsePlan("select(inc=42K; scan)", sources).ok());
  EXPECT_FALSE(ParsePlan("scan(7)", sources).ok());
  EXPECT_FALSE(ParsePlan("join(scan; scan)", sources).ok());
  EXPECT_FALSE(ParsePlan("project(ghost; scan)", sources).ok());
}

// Parser hardening: adversarial inputs must produce a clean Status
// whose message names the byte offset of the offending token — never a
// crash, never a silent mis-parse.

TEST(PlanParserTest, ErrorsCarryByteOffsets) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  for (const char* bad :
       {"frobnicate(scan)", "select(inc=100K; scan", "scan(7)",
        "select(inc=100K; scan))", "join(scan; scan)", "select(; scan(9))",
        "project(ghost; scan)", "select(bogus=1; scan)", ""}) {
    auto parsed = ParsePlan(bad, sources);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_NE(parsed.status().message().find("at byte"), std::string::npos)
        << "input \"" << bad << "\" -> " << parsed.status().message();
  }
  // Spot-check the offsets point at the offending token.
  auto unknown = ParsePlan("frobnicate(scan)", sources);
  EXPECT_NE(unknown.status().message().find("at byte 0"), std::string::npos)
      << unknown.status().message();
  //                           0123456789012345678901
  auto extra = ParsePlan("select(inc=100K; scan))", sources);
  EXPECT_NE(extra.status().message().find("at byte 21"), std::string::npos)
      << extra.status().message();
}

TEST(PlanParserTest, DeepNestingIsRejectedNotOverflowed) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};

  auto nested = [](size_t depth) {
    std::string text;
    for (size_t i = 0; i < depth; ++i) text += "select(true; ";
    text += "scan";
    for (size_t i = 0; i < depth; ++i) text += ")";
    return text;
  };

  // Under the cap: parses and evaluates normally (no behavior change).
  auto ok = ParsePlan(nested(40), sources);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(EvaluatePlan(*ok->plan, sources).ok());

  // Far past any sane nesting: a clean error with an offset, not a
  // stack overflow.
  for (size_t depth : {size_t{100}, size_t{1000}, size_t{20000}}) {
    auto deep = ParsePlan(nested(depth), sources);
    ASSERT_FALSE(deep.ok()) << depth;
    EXPECT_NE(deep.status().message().find("nested deeper"),
              std::string::npos)
        << deep.status().message();
    EXPECT_NE(deep.status().message().find("at byte"), std::string::npos);
  }
}

TEST(PlanParserTest, JunkBytesNeverCrashOrMisparse) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  // Charset biased toward the grammar's structural characters so the
  // fuzz hits parser states, not just "unknown operator".
  const std::string charset = "();=&,scanseletprojoinexists count0159Kwinc";
  Rng rng(0xF022ED);
  for (int trial = 0; trial < 3000; ++trial) {
    size_t len = 1 + rng.UniformInt(64);
    std::string text;
    text.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      // Mostly charset bytes, occasionally arbitrary junk (including
      // NUL and high bytes).
      if (rng.Bernoulli(0.9)) {
        text += charset[rng.UniformInt(charset.size())];
      } else {
        text += static_cast<char>(rng.UniformInt(256));
      }
    }
    auto parsed = ParsePlan(text, sources);
    if (!parsed.ok()) {
      // Clean failure: a message with a location, never empty.
      EXPECT_FALSE(parsed.status().message().empty());
      continue;
    }
    // Anything accepted must be a well-formed plan: schema derivation
    // and evaluation both succeed (no silent mis-parse).
    ASSERT_TRUE(parsed->plan != nullptr) << text;
    EXPECT_TRUE(PlanOutputSchema(*parsed->plan, sources).ok()) << text;
    EXPECT_TRUE(EvaluatePlan(*parsed->plan, sources).ok()) << text;
  }
}

// --- The Monte-Carlo oracle ----------------------------------------------

TEST(PlanOracleTest, AgreesWithExactEvaluationOnSafePlan) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  auto plan = SelectPlan(Predicate::Eq(1, 1), ScanPlan(0));  // nw=500K

  OracleOptions oo;
  oo.trials = 20000;
  auto oracle = MonteCarloPlanOracle(*plan, sources, oo);
  ASSERT_TRUE(oracle.ok());

  auto exists = EvaluateExists(*plan, sources);
  auto count = EvaluateCount(*plan, sources);
  ASSERT_TRUE(exists.ok());
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(oracle->exists, exists->prob.lo, 0.02);
  EXPECT_NEAR(oracle->expected_count, count->expected.lo, 0.05);
  ASSERT_TRUE(count->has_distribution);
  for (size_t k = 0; k < count->distribution.size(); ++k) {
    double got = k < oracle->count_distribution.size()
                     ? oracle->count_distribution[k]
                     : 0.0;
    EXPECT_NEAR(got, count->distribution[k], 0.02) << "count=" << k;
  }

  // Per-tuple marginals too.
  auto result = EvaluatePlan(*plan, sources);
  ASSERT_TRUE(result.ok());
  std::map<std::vector<ValueId>, double> freq;
  for (const ProbTuple& pt : oracle->marginals) {
    freq[pt.tuple.values()] = pt.prob;
  }
  for (const DistinctMarginal& m : DistinctMarginals(*result, sources)) {
    EXPECT_NEAR(freq[m.tuple.values()], m.prob.lo, 0.02);
  }
}

// Same pattern as core_engine_test.cc DeterministicAcrossThreadCounts:
// the oracle's chunked tallies make its output a pure function of
// (plan, sources, trials, seed) — bit-identical for 1, 2, and 8
// threads, as is (trivially pure) extensional plan evaluation.
TEST(PlanOracleTest, DeterministicAcrossThreadCounts) {
  ProbDatabase db = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db};
  auto plan = ProjectPlan({1}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));

  std::vector<OracleResult> results;
  std::vector<std::vector<DistinctMarginal>> evals;
  for (size_t threads : {1u, 2u, 8u}) {
    OracleOptions oo;
    oo.trials = 6000;
    oo.num_threads = threads;
    oo.chunk_size = 256;
    auto oracle = MonteCarloPlanOracle(*plan, sources, oo);
    ASSERT_TRUE(oracle.ok());
    results.push_back(std::move(oracle).value());
    auto eval = EvaluatePlan(*plan, sources);
    ASSERT_TRUE(eval.ok());
    evals.push_back(DistinctMarginals(*eval, sources));
  }
  for (size_t r = 1; r < results.size(); ++r) {
    EXPECT_EQ(results[r].exists, results[0].exists);
    EXPECT_EQ(results[r].expected_count, results[0].expected_count);
    EXPECT_EQ(results[r].count_distribution, results[0].count_distribution);
    ASSERT_EQ(results[r].marginals.size(), results[0].marginals.size());
    for (size_t i = 0; i < results[0].marginals.size(); ++i) {
      EXPECT_EQ(results[r].marginals[i].tuple,
                results[0].marginals[i].tuple);
      EXPECT_EQ(results[r].marginals[i].prob,
                results[0].marginals[i].prob);
    }
    // Extensional evaluation is pure: identical outputs every run.
    ASSERT_EQ(evals[r].size(), evals[0].size());
    for (size_t i = 0; i < evals[0].size(); ++i) {
      EXPECT_EQ(evals[r][i].tuple, evals[0][i].tuple);
      EXPECT_EQ(evals[r][i].prob.lo, evals[0][i].prob.lo);
      EXPECT_EQ(evals[r][i].prob.hi, evals[0][i].prob.hi);
    }
  }
}

TEST(PlanOracleTest, ValidatesInput) {
  ProbDatabase db = SmallDb();
  OracleOptions oo;
  oo.trials = 0;
  EXPECT_FALSE(MonteCarloPlanOracle(*ScanPlan(0), {&db}, oo).ok());
  EXPECT_FALSE(
      MonteCarloPlanOracle(*ScanPlan(2), {&db}, OracleOptions()).ok());
  // A predicate touching an attribute outside the child schema must be
  // rejected up front on the oracle path too (Predicate::Eval's cell
  // access is unchecked).
  auto bad_pred = SelectPlan(Predicate::Eq(5, 0), ScanPlan(0));
  EXPECT_FALSE(PlanOutputSchema(*bad_pred, {&db}).ok());
  EXPECT_FALSE(MonteCarloPlanOracle(*bad_pred, {&db}, OracleOptions()).ok());
  EXPECT_FALSE(EvaluatePlan(*bad_pred, {&db}).ok());
  // EvaluatePlanInWorld checks choice-vector shape.
  EXPECT_FALSE(EvaluatePlanInWorld(*ScanPlan(0), {&db}, {}).ok());
  std::vector<std::vector<int32_t>> bad = {{0}};
  EXPECT_FALSE(EvaluatePlanInWorld(*ScanPlan(0), {&db}, bad).ok());
}

}  // namespace
}  // namespace mrsl
