// Tests for the CSV reader/writer, including quoting round-trips and
// malformed input handling.

#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace mrsl {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, NoTrailingNewline) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "2");
}

TEST(CsvTest, EmptyFieldsPreserved) {
  auto rows = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], "");
  EXPECT_EQ((*rows)[1].size(), 3u);
}

TEST(CsvTest, QuotedFieldWithComma) {
  auto rows = ParseCsv("\"x,y\",z\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "x,y");
  EXPECT_EQ((*rows)[0][1], "z");
}

TEST(CsvTest, QuotedFieldWithEscapedQuote) {
  auto rows = ParseCsv("\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "he said \"hi\"");
}

TEST(CsvTest, QuotedFieldWithNewline) {
  auto rows = ParseCsv("\"line1\nline2\",b\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "line1\nline2");
}

TEST(CsvTest, CrLfHandled) {
  auto rows = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][0], "1");
}

TEST(CsvTest, UnterminatedQuoteIsCorruption) {
  auto rows = ParseCsv("\"abc\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, QuoteInsideUnquotedFieldIsCorruption) {
  auto rows = ParseCsv("ab\"c,d\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  std::string out = WriteCsv({{"plain", "with,comma", "with\"quote"}});
  EXPECT_EQ(out, "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, RoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"a", "b,c", "d\"e", "f\ng"},
      {"", "?", "v1", "v2"},
  };
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/mrsl_csv_test.csv";
  ASSERT_TRUE(WriteFile(path, "x,y\n1,2\n").ok());
  auto content = ReadFile(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "x,y\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvFileTest, ReadMissingFileFails) {
  auto content = ReadFile("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace mrsl
