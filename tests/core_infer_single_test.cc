// Tests for Algorithm 2 (single-attribute inference): hand-computed
// estimates on the Fig 1 data, the four voting methods, and statistical
// accuracy against a known Bayesian network.

#include "core/infer_single.h"

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "bn/exact.h"
#include "core/learner.h"
#include "expfw/metrics.h"
#include "paper_example.h"

namespace mrsl {
namespace {

LearnOptions Opts(double theta) {
  LearnOptions o;
  o.support_threshold = theta;
  return o;
}

VotingOptions Voting(VoterChoice c, VotingScheme s) {
  VotingOptions v;
  v.choice = c;
  v.scheme = s;
  return v;
}

class InferSingleFig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    rel_ = LoadFig1();
    auto model = LearnModel(rel_, Opts(0.05));
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
    ASSERT_TRUE(rel_.schema().FindAttr("age", &age_));
    ASSERT_TRUE(rel_.schema().FindAttr("edu", &edu_));
  }

  Relation rel_;
  MrslModel model_;
  AttrId age_ = 0;
  AttrId edu_ = 0;
};

// Evidence edu=HS only. Best match: P(age | edu=HS) = ~[0.75, 0, 0.25].
TEST_F(InferSingleFig1Test, BestVoterUsesMostSpecificRule) {
  Tuple t(4);
  t.set_value(edu_, rel_.schema().attr(edu_).Find("HS"));
  auto cpd = InferSingleAttribute(
      model_, t, age_, Voting(VoterChoice::kBest, VotingScheme::kAveraged));
  ASSERT_TRUE(cpd.ok());
  EXPECT_NEAR(cpd->prob(0), 0.75, 0.01);  // age=20
  EXPECT_NEAR(cpd->prob(2), 0.25, 0.01);  // age=40
}

// All matching rules: root P(age) = [0.5, 0.125, 0.375] plus the HS rule;
// plain average = [0.625, ~0.0625, 0.3125].
TEST_F(InferSingleFig1Test, AllAveragedCombinesRootAndSpecific) {
  Tuple t(4);
  t.set_value(edu_, rel_.schema().attr(edu_).Find("HS"));
  auto cpd = InferSingleAttribute(
      model_, t, age_, Voting(VoterChoice::kAll, VotingScheme::kAveraged));
  ASSERT_TRUE(cpd.ok());
  EXPECT_NEAR(cpd->prob(0), 0.625, 0.01);
  EXPECT_NEAR(cpd->prob(1), 0.0625, 0.01);
  EXPECT_NEAR(cpd->prob(2), 0.3125, 0.01);
}

// Weighted all: weights 1.0 (root) and 0.5 (HS rule).
TEST_F(InferSingleFig1Test, AllWeightedUsesSupports) {
  Tuple t(4);
  t.set_value(edu_, rel_.schema().attr(edu_).Find("HS"));
  auto cpd = InferSingleAttribute(
      model_, t, age_, Voting(VoterChoice::kAll, VotingScheme::kWeighted));
  ASSERT_TRUE(cpd.ok());
  // (1.0 * [0.5, .125, .375] + 0.5 * [0.75, 0, 0.25]) / 1.5
  EXPECT_NEAR(cpd->prob(0), (0.5 + 0.375) / 1.5, 0.01);
  EXPECT_NEAR(cpd->prob(1), 0.125 / 1.5, 0.01);
  EXPECT_NEAR(cpd->prob(2), (0.375 + 0.125) / 1.5, 0.01);
}

// No evidence at all: only the root matches; the estimate equals P(age).
TEST_F(InferSingleFig1Test, NoEvidenceFallsBackToPrior) {
  Tuple t(4);
  for (auto voting :
       {Voting(VoterChoice::kAll, VotingScheme::kAveraged),
        Voting(VoterChoice::kBest, VotingScheme::kWeighted)}) {
    auto cpd = InferSingleAttribute(model_, t, age_, voting);
    ASSERT_TRUE(cpd.ok());
    EXPECT_NEAR(cpd->prob(0), 0.5, 0.01);
    EXPECT_NEAR(cpd->prob(1), 0.125, 0.01);
    EXPECT_NEAR(cpd->prob(2), 0.375, 0.01);
  }
}

TEST_F(InferSingleFig1Test, EstimateIsAlwaysADistribution) {
  // Sweep all single-missing patterns over a few evidence tuples.
  for (const Tuple& base : rel_.rows()) {
    if (!base.IsComplete()) continue;
    for (AttrId a = 0; a < 4; ++a) {
      Tuple t = base;
      t.set_value(a, kMissingValue);
      for (auto choice : {VoterChoice::kAll, VoterChoice::kBest}) {
        for (auto scheme :
             {VotingScheme::kAveraged, VotingScheme::kWeighted}) {
          auto cpd =
              InferSingleAttribute(model_, t, a, Voting(choice, scheme));
          ASSERT_TRUE(cpd.ok());
          double sum = 0.0;
          for (double p : cpd->probs()) {
            EXPECT_GT(p, 0.0);
            sum += p;
          }
          EXPECT_NEAR(sum, 1.0, 1e-9);
        }
      }
    }
  }
}

TEST_F(InferSingleFig1Test, ErrorsOnAssignedAttribute) {
  Tuple t(4);
  t.set_value(age_, 0);
  EXPECT_FALSE(InferSingleAttribute(model_, t, age_,
                                    VotingOptions())
                   .ok());
}

TEST_F(InferSingleFig1Test, InferSingleRequiresExactlyOneMissing) {
  Tuple two_missing(4);
  two_missing.set_value(0, 0);
  two_missing.set_value(1, 0);
  EXPECT_FALSE(InferSingle(model_, two_missing, VotingOptions()).ok());

  Tuple one_missing = rel_.row(1);  // complete t2
  one_missing.set_value(age_, kMissingValue);
  EXPECT_TRUE(InferSingle(model_, one_missing, VotingOptions()).ok());
}

// Statistical test: on data from a known BN, the best-averaged estimate
// of P(attr | rest) should be close to the exact BN conditional.
class InferSingleAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InferSingleAccuracyTest, EstimatesCloseToBnGroundTruth) {
  Rng rng(GetParam());
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation train = bn.SampleRelation(20000, &rng);
  auto model = LearnModel(train, Opts(0.001));
  ASSERT_TRUE(model.ok());

  AccuracyAccumulator acc;
  for (int trial = 0; trial < 100; ++trial) {
    Tuple t = bn.ForwardSample(&rng);
    AttrId missing = static_cast<AttrId>(rng.UniformInt(4));
    t.set_value(missing, kMissingValue);

    auto est = InferSingleAttribute(
        *model, t, missing,
        Voting(VoterChoice::kBest, VotingScheme::kAveraged));
    ASSERT_TRUE(est.ok());
    auto truth = ExactConditionalEnum(bn, t, {missing});
    ASSERT_TRUE(truth.ok());
    acc.Add(KlDivergence(truth->probs(), est->probs()),
            Top1Match(truth->probs(), est->probs()));
  }
  // The paper reports KL ~0.03 and top-1 ~0.96 for BN1-class networks at
  // train=100k; at train=20k we allow a looser but still tight bound.
  EXPECT_LT(acc.MeanKl(), 0.05);
  EXPECT_GT(acc.Top1Rate(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferSingleAccuracyTest,
                         ::testing::Values(1001, 2002, 3003));

}  // namespace
}  // namespace mrsl
