// Tests for query fingerprinting (pdb/fingerprint.h): the two contract
// properties — literal-insensitivity (plans differing only in predicate
// constants share a fingerprint) and shape-sensitivity (plans differing
// in structure, attributes, negation, join keys, or kind never do) —
// pinned both on hand-built cases and over randomized plan pairs whose
// expected normalized text is rendered by an independent generator.

#include "pdb/fingerprint.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "oracle_harness.h"
#include "pdb/plan.h"
#include "pdb/prob_database.h"
#include "util/rng.h"

namespace mrsl {
namespace {

using oracle_harness::SmallDb;

Result<QueryFingerprint> Fp(const std::string& text, const ProbDatabase& db) {
  auto parsed = ParsePlan(text, {&db});
  if (!parsed.ok()) return parsed.status();
  return FingerprintQuery(*parsed, {&db});
}

TEST(FingerprintTest, LiteralsCollapseToOnePlaceholderShape) {
  ProbDatabase db = SmallDb();
  auto a = Fp("count(select(inc=50K; scan))", db);
  auto b = Fp("count(select(inc=100K; scan))", db);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->normalized, "count(select(inc=?; scan(0)))");
  EXPECT_EQ(a->normalized, b->normalized);
  EXPECT_EQ(a->hash, b->hash);
}

TEST(FingerprintTest, HashIsStableAcrossProcesses) {
  // FNV-1a64 of "count(select(inc=?; scan(0)))", computed externally.
  // Digest keys are logged and joined against across restarts; a hash
  // change here is a wire-format break.
  ProbDatabase db = SmallDb();
  auto fp = Fp("count(select(inc=50K; scan))", db);
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(FingerprintHex(fp->hash), "b260cba82a1404a3");
}

TEST(FingerprintTest, ShapeChangesChangeTheFingerprint) {
  ProbDatabase db = SmallDb();
  const std::string base = "count(select(inc=50K; scan))";
  // Attribute, negation, kind, extra operator, atom order: all shape.
  const std::vector<std::string> different = {
      "count(select(nw=100K; scan))",
      "count(select(inc!=50K; scan))",
      "exists(select(inc=50K; scan))",
      "select(inc=50K; scan)",
      "count(scan)",
      "count(select(inc=50K & nw=100K; scan))",
      "count(select(nw=100K & inc=50K; scan))",
      "count(project(inc; select(inc=50K; scan)))",
  };
  auto base_fp = Fp(base, db);
  ASSERT_TRUE(base_fp.ok());
  for (const std::string& text : different) {
    auto fp = Fp(text, db);
    ASSERT_TRUE(fp.ok()) << text;
    EXPECT_NE(fp->normalized, base_fp->normalized) << text;
    EXPECT_NE(fp->hash, base_fp->hash) << text;
  }
}

TEST(FingerprintTest, JoinKeysAndSourcesArePartOfTheShape) {
  ProbDatabase db = SmallDb();
  ProbDatabase db2 = SmallDb();
  std::vector<const ProbDatabase*> sources = {&db, &db2};
  auto parse = [&](const std::string& text) {
    auto parsed = ParsePlan(text, sources);
    EXPECT_TRUE(parsed.ok()) << text;
    auto fp = FingerprintQuery(*parsed, sources);
    EXPECT_TRUE(fp.ok()) << text;
    return fp->hash;
  };
  uint64_t a = parse("count(join(scan(0); scan(1); inc=inc))");
  uint64_t b = parse("count(join(scan(0); scan(1); inc=nw))");
  uint64_t c = parse("count(join(scan(0); scan(0); inc=inc))");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(FingerprintTest, KindNamesAndHexRendering) {
  EXPECT_STREQ(QueryKindName(ParsedQuery::Kind::kRelation), "relation");
  EXPECT_STREQ(QueryKindName(ParsedQuery::Kind::kExists), "exists");
  EXPECT_STREQ(QueryKindName(ParsedQuery::Kind::kCount), "count");
  EXPECT_EQ(FingerprintHex(0), "0000000000000000");
  EXPECT_EQ(FingerprintHex(0xDEADBEEFULL), "00000000deadbeef");
  EXPECT_EQ(FingerprintHex(~0ULL), "ffffffffffffffff");
}

// -------------------------------------------------------------------------
// The property test: a generator that renders a random plan TWICE with
// independently drawn literals, plus the shape it expects back — the
// normalized text with every literal as "?" — built without consulting
// fingerprint.cc. Literal-insensitivity: both renderings fingerprint
// identically. Shape-sensitivity: across iterations, equal shapes imply
// equal hashes and distinct shapes imply distinct hashes.
// -------------------------------------------------------------------------

struct GenOutput {
  std::string text_a;  // one literal draw
  std::string text_b;  // an independent literal draw, same shape
  std::string shape;   // expected normalized text
};

// One predicate over SmallDb's schema: inc in {50K, 100K}, nw in
// {100K, 500K}. Input syntax joins atoms with " & "; the normalized
// rendering uses " AND ".
void GenPredicate(Rng* rng, GenOutput* out) {
  static const char* kAttrs[2] = {"inc", "nw"};
  static const char* kLabels[2][2] = {{"50K", "100K"}, {"100K", "500K"}};
  const size_t atoms = 1 + rng->UniformInt(2);
  for (size_t i = 0; i < atoms; ++i) {
    if (i != 0) {
      out->text_a += " & ";
      out->text_b += " & ";
      out->shape += " AND ";
    }
    const size_t attr = rng->UniformInt(2);
    const char* op = rng->Bernoulli(0.3) ? "!=" : "=";
    out->text_a += std::string(kAttrs[attr]) + op +
                   kLabels[attr][rng->UniformInt(2)];
    out->text_b += std::string(kAttrs[attr]) + op +
                   kLabels[attr][rng->UniformInt(2)];
    out->shape += std::string(kAttrs[attr]) + op + "?";
  }
}

// select(pred; scan) or bare scan — the literal-bearing leaf.
void GenLeaf(Rng* rng, GenOutput* out) {
  if (rng->Bernoulli(0.75)) {
    GenOutput pred;
    GenPredicate(rng, &pred);
    out->text_a += "select(" + pred.text_a + "; scan)";
    out->text_b += "select(" + pred.text_b + "; scan)";
    out->shape += "select(" + pred.shape + "; scan(0))";
  } else {
    out->text_a += "scan";
    out->text_b += "scan";
    out->shape += "scan(0)";
  }
}

GenOutput GenQuery(Rng* rng) {
  GenOutput body;
  const bool join = rng->Bernoulli(0.4);
  if (join) {
    GenOutput left, right;
    GenLeaf(rng, &left);
    GenLeaf(rng, &right);
    static const char* kNames[2] = {"inc", "nw"};
    const std::string lkey = kNames[rng->UniformInt(2)];
    const std::string rkey = kNames[rng->UniformInt(2)];
    body.text_a = "join(" + left.text_a + "; " + right.text_a + "; " + lkey +
                  "=" + rkey + ")";
    body.text_b = "join(" + left.text_b + "; " + right.text_b + "; " + lkey +
                  "=" + rkey + ")";
    body.shape = "join(" + left.shape + "; " + right.shape + "; " + lkey +
                 "=" + rkey + ")";
  } else {
    GenLeaf(rng, &body);
    if (rng->Bernoulli(0.4)) {
      // Project over the two-attribute leaf (never over a join, whose
      // concatenated schema would make the names ambiguous).
      static const char* kProjections[3] = {"inc", "nw", "inc,nw"};
      const std::string names = kProjections[rng->UniformInt(3)];
      body.text_a = "project(" + names + "; " + body.text_a + ")";
      body.text_b = "project(" + names + "; " + body.text_b + ")";
      body.shape = "project(" + names + "; " + body.shape + ")";
    }
  }
  GenOutput out;
  switch (rng->UniformInt(3)) {
    case 0:
      out = std::move(body);
      break;
    case 1:
      out.text_a = "exists(" + body.text_a + ")";
      out.text_b = "exists(" + body.text_b + ")";
      out.shape = "exists(" + body.shape + ")";
      break;
    default:
      out.text_a = "count(" + body.text_a + ")";
      out.text_b = "count(" + body.text_b + ")";
      out.shape = "count(" + body.shape + ")";
      break;
  }
  return out;
}

TEST(FingerprintPropertyTest, RandomizedPlansNormalizeToTheirShape) {
  ProbDatabase db = SmallDb();
  Rng rng(20260807);
  std::map<std::string, uint64_t> hash_by_shape;
  std::map<uint64_t, std::string> shape_by_hash;
  for (int iter = 0; iter < 400; ++iter) {
    GenOutput gen = GenQuery(&rng);
    auto fp_a = Fp(gen.text_a, db);
    auto fp_b = Fp(gen.text_b, db);
    ASSERT_TRUE(fp_a.ok()) << gen.text_a;
    ASSERT_TRUE(fp_b.ok()) << gen.text_b;

    // The normalized text is exactly the generator's shape rendering.
    EXPECT_EQ(fp_a->normalized, gen.shape) << gen.text_a;

    // Literal-insensitivity: an independent literal draw of the same
    // shape fingerprints identically.
    EXPECT_EQ(fp_a->hash, fp_b->hash) << gen.text_a << " vs " << gen.text_b;
    EXPECT_EQ(fp_a->normalized, fp_b->normalized);

    // Shape-sensitivity across the corpus: one hash per shape, one
    // shape per hash.
    auto by_shape = hash_by_shape.emplace(gen.shape, fp_a->hash);
    EXPECT_EQ(by_shape.first->second, fp_a->hash) << gen.shape;
    auto by_hash = shape_by_hash.emplace(fp_a->hash, gen.shape);
    EXPECT_EQ(by_hash.first->second, gen.shape)
        << "hash collision: " << gen.shape;
  }
  // The generator must actually cover a spread of shapes.
  EXPECT_GT(hash_by_shape.size(), 30u);
}

}  // namespace
}  // namespace mrsl
