// Tests for the Gibbs convergence diagnostics (Geweke z, effective
// sample size, burn-in / sample-count suggestions).

#include "core/diagnostics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bn/bayes_net.h"
#include "core/learner.h"
#include "util/rng.h"

namespace mrsl {
namespace {

TEST(GewekeTest, StationaryIidSeriesPasses) {
  Rng rng(1);
  std::vector<double> series;
  for (int i = 0; i < 2000; ++i) series.push_back(rng.Bernoulli(0.3));
  EXPECT_LT(std::abs(GewekeZ(series)), 2.5);
}

TEST(GewekeTest, DriftingSeriesFails) {
  // Mean drifts from 0.1 to 0.9 across the series.
  Rng rng(2);
  std::vector<double> series;
  for (int i = 0; i < 2000; ++i) {
    double p = 0.1 + 0.8 * static_cast<double>(i) / 2000.0;
    series.push_back(rng.Bernoulli(p));
  }
  EXPECT_GT(std::abs(GewekeZ(series)), 3.0);
}

TEST(GewekeTest, ConstantSeriesIsConverged) {
  std::vector<double> series(1000, 1.0);
  EXPECT_DOUBLE_EQ(GewekeZ(series), 0.0);
}

TEST(GewekeTest, ShortSeriesReturnsZero) {
  std::vector<double> series(10, 0.5);
  EXPECT_DOUBLE_EQ(GewekeZ(series), 0.0);
}

TEST(EssTest, IidSeriesHasEssNearN) {
  Rng rng(3);
  std::vector<double> series;
  for (int i = 0; i < 4000; ++i) series.push_back(rng.Bernoulli(0.5));
  double ess = EffectiveSampleSize(series);
  EXPECT_GT(ess, 2500.0);
  EXPECT_LE(ess, 4000.0);
}

TEST(EssTest, StickyChainHasLowEss) {
  // Markov chain that flips state with probability 0.02: high
  // autocorrelation, ESS should collapse.
  Rng rng(4);
  std::vector<double> series;
  double state = 0.0;
  for (int i = 0; i < 4000; ++i) {
    if (rng.Bernoulli(0.02)) state = 1.0 - state;
    series.push_back(state);
  }
  double ess = EffectiveSampleSize(series);
  EXPECT_LT(ess, 500.0);
  EXPECT_GE(ess, 1.0);
}

TEST(EssTest, ConstantSeriesEssIsN) {
  std::vector<double> series(500, 0.0);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize(series), 500.0);
}

class DiagnoseChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    bn_ = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
    Relation train = bn_.SampleRelation(15000, &rng);
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(train, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  BayesNet bn_;
  MrslModel model_;
};

TEST_F(DiagnoseChainTest, ProducesActionableSuggestions) {
  GibbsOptions opts;
  opts.seed = 9;
  GibbsSampler sampler(&model_, opts);
  Tuple t(4);
  t.set_value(0, 0);  // two attrs observed, two missing
  t.set_value(3, 1);
  auto diag = DiagnoseChain(&sampler, t, 2000, 1000.0);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_EQ(diag->pilot_sweeps, 2000u);
  // A healthy, well-trained chain converges fast.
  EXPECT_LE(diag->suggested_burn_in, 1000u);
  EXPECT_GT(diag->min_ess, 0.0);
  EXPECT_LE(diag->min_ess, 2000.0);
  EXPECT_GT(diag->suggested_samples, 0u);
  // Mixing is good here, so reaching ESS 1000 should not require an
  // astronomical run.
  EXPECT_LT(diag->suggested_samples, 100000u);
}

TEST_F(DiagnoseChainTest, ValidatesInput) {
  GibbsOptions opts;
  GibbsSampler sampler(&model_, opts);
  Tuple t(4);
  t.set_value(0, 0);
  EXPECT_FALSE(DiagnoseChain(&sampler, t, 50).ok());  // pilot too short
  Tuple complete({0, 0, 0, 0});
  EXPECT_FALSE(DiagnoseChain(&sampler, complete, 2000).ok());
}

TEST_F(DiagnoseChainTest, SuggestionsImproveWithTargetEss) {
  GibbsOptions opts;
  opts.seed = 10;
  GibbsSampler s1(&model_, opts);
  GibbsSampler s2(&model_, opts);
  Tuple t(4);
  t.set_value(1, 0);
  auto lo = DiagnoseChain(&s1, t, 2000, 200.0);
  auto hi = DiagnoseChain(&s2, t, 2000, 2000.0);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_LT(lo->suggested_samples, hi->suggested_samples);
}

}  // namespace
}  // namespace mrsl
