// End-to-end smoke test of the serving subsystem over real loopback
// sockets: the full endpoint surface, byte-identity of HTTP answers
// with the in-process (CLI) query path, and the whole-epoch guarantee —
// a /query racing an /update commit returns a body byte-identical to
// either the pre- or post-commit epoch, never a mix (the store-label
// race tests, extended through the server).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bn/bayes_net.h"
#include "core/learner.h"
#include "pdb/snapshot_io.h"
#include "pdb/store.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "util/csv.h"
#include "util/trace.h"
#include "util/version.h"

namespace mrsl {
namespace {

Tuple T(std::vector<int> vals) {
  Tuple t(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    t.set_value(static_cast<AttrId>(i), vals[i]);
  }
  return t;
}

class ServerSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    bn_ = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
    Relation train = bn_.SampleRelation(6000, &rng);
    schema_ = train.schema();
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(train, lo);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();

    engine_ = std::make_unique<Engine>(&model_);
    StoreOptions so;
    so.workload.gibbs.samples = 120;
    so.workload.gibbs.burn_in = 20;
    so.workload.gibbs.seed = 4242;
    store_ = std::make_unique<BidStore>(engine_.get(), so);
    ASSERT_TRUE(store_->Commit(BaseRelation()).ok());

    service_ = std::make_unique<StoreService>(store_.get());
    server_ = std::make_unique<HttpServer>();
    service_->Attach(server_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  // The StoreTest fixture relation: three subsumption components plus
  // three complete rows.
  Relation BaseRelation() {
    Relation rel(schema_);
    EXPECT_TRUE(rel.Append(T({0, 1, 2, 0})).ok());
    EXPECT_TRUE(rel.Append(T({0, 0, -1, -1})).ok());
    EXPECT_TRUE(rel.Append(T({0, 0, 1, -1})).ok());
    EXPECT_TRUE(rel.Append(T({1, 0, 2, 1})).ok());
    EXPECT_TRUE(rel.Append(T({1, 1, -1, -1})).ok());
    EXPECT_TRUE(rel.Append(T({2, 2, 0, -1})).ok());
    EXPECT_TRUE(rel.Append(T({2, 2, -1, 0})).ok());
    EXPECT_TRUE(rel.Append(T({2, 2, -1, -1})).ok());
    EXPECT_TRUE(rel.Append(T({2, 0, 1, 1})).ok());
    return rel;
  }

  // A plan that reads real probability mass: count rows with attr0 = 0.
  std::string CountPlan() {
    return "count(select(" + schema_.attr(0).name() + "=" +
           schema_.attr(0).label(0) + "; scan))";
  }

  // Delta CSV inserting the singleton component (1, 2, ?, ?).
  std::string InsertDeltaCsv() {
    std::string csv = "op,row";
    for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
      csv += "," + schema_.attr(a).name();
    }
    csv += "\ninsert,," + schema_.attr(0).label(1) + "," +
           schema_.attr(1).label(2) + ",?,?\n";
    return csv;
  }

  Result<HttpResponseMessage> Call(const std::string& method,
                                   const std::string& target,
                                   const std::string& body = "") {
    HttpClient client;
    MRSL_RETURN_IF_ERROR(client.Connect("127.0.0.1", server_->port()));
    return client.RoundTrip(method, target, body);
  }

  BayesNet bn_;
  Schema schema_;
  MrslModel model_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<BidStore> store_;
  std::unique_ptr<StoreService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerSmokeTest, HealthzReportsTheEpochVersionAndUptime) {
  auto resp = Call("GET", "/healthz");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  // The fixed prefix is exact; uptime/start-time are clock readings.
  EXPECT_EQ(resp->body.rfind("{\"status\":\"ok\",\"epoch\":1,\"version\":\""
                             MRSL_VERSION_STRING
                             "\",\"uptime_seconds\":",
                             0),
            0u)
      << resp->body;
  EXPECT_NE(resp->body.find("\"start_time_unix_seconds\":"),
            std::string::npos);
}

TEST_F(ServerSmokeTest, QueryAnswersMatchTheInProcessPath) {
  auto resp = Call("POST", "/query", CountPlan());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, 200);
  EXPECT_EQ(resp->Header("x-mrsl-cache", ""), "miss");
  EXPECT_EQ(resp->Header("x-mrsl-epoch", ""), "1");

  // The in-process evaluation (the CLI path) must agree bit for bit:
  // the body embeds %.17g renderings of the same doubles.
  auto direct = store_->Query(CountPlan());
  ASSERT_TRUE(direct.ok());
  char lo[64];
  std::snprintf(lo, sizeof(lo), "%.17g",
                direct->eval->count.expected.lo);
  EXPECT_NE(resp->body.find(std::string("\"count\":{\"lo\":") + lo),
            std::string::npos)
      << resp->body;

  // Same plan again: a cache hit with a byte-identical body.
  auto again = Call("POST", "/query", CountPlan());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Header("x-mrsl-cache", ""), "hit");
  EXPECT_EQ(again->body, resp->body);
}

TEST_F(ServerSmokeTest, RelationAndExistsAndOracleKinds) {
  const std::string select_plan = "select(" + schema_.attr(0).name() + "=" +
                                  schema_.attr(0).label(0) + "; scan)";
  auto rows = Call("POST", "/query", select_plan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->status, 200);
  EXPECT_NE(rows->body.find("\"kind\":\"relation\""), std::string::npos);
  EXPECT_NE(rows->body.find("\"rows\":["), std::string::npos);
  EXPECT_NE(rows->body.find("\"values\":[\"" + schema_.attr(0).label(0)),
            std::string::npos);

  auto exists = Call("POST", "/query", "exists(" + select_plan + ")");
  ASSERT_TRUE(exists.ok());
  EXPECT_NE(exists->body.find("\"kind\":\"exists\""), std::string::npos);

  auto oracle =
      Call("POST", "/query?oracle=2000", "exists(" + select_plan + ")");
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(oracle->status, 200);
  EXPECT_NE(oracle->body.find("\"oracle\":{\"trials\":2000"),
            std::string::npos);

  // Deterministic oracle: identical request, identical body.
  auto oracle2 =
      Call("POST", "/query?oracle=2000", "exists(" + select_plan + ")");
  ASSERT_TRUE(oracle2.ok());
  EXPECT_EQ(oracle2->body, oracle->body);
}

TEST_F(ServerSmokeTest, CompiledQueriesCarryEnvelopeAndCacheApart) {
  // Self-join on the incomplete attr2: correlated lineage, so the
  // compiler actually has something to refine.
  const std::string a2 = schema_.attr(2).name();
  const std::string plan = "project(" + schema_.attr(1).name() +
                           "; join(scan; scan; " + a2 + "=" + a2 + "))";

  auto compiled = Call("POST", "/query?width=0", plan);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled->status, 200);
  EXPECT_EQ(compiled->Header("x-mrsl-cache", ""), "miss");
  EXPECT_FALSE(compiled->Header("x-mrsl-compiled", "").empty());
  EXPECT_NE(compiled->body.find("\"compile\":{"), std::string::npos);
  EXPECT_NE(compiled->body.find("\"mean_width_final\":"),
            std::string::npos);
  // compile wall time is a metric, never part of the (cacheable) body.
  EXPECT_EQ(compiled->body.find("compile_seconds"), std::string::npos);

  // Identical configuration: cache hit, byte-identical body.
  auto hit = Call("POST", "/query?width=0", plan);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->Header("x-mrsl-cache", ""), "hit");
  EXPECT_EQ(hit->body, compiled->body);

  // A different width target is a different cache entry...
  auto other_width = Call("POST", "/query?width=0.5", plan);
  ASSERT_TRUE(other_width.ok());
  ASSERT_EQ(other_width->status, 200);
  EXPECT_EQ(other_width->Header("x-mrsl-cache", ""), "miss");

  // ...and the plain evaluator neither serves nor is served a compiled
  // envelope.
  auto plain = Call("POST", "/query", plan);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->status, 200);
  EXPECT_EQ(plain->Header("x-mrsl-cache", ""), "miss");
  EXPECT_TRUE(plain->Header("x-mrsl-compiled", "").empty());
  EXPECT_EQ(plain->body.find("\"compile\":{"), std::string::npos);

  // A safe plan compiles to a point answer and says so in the header.
  auto safe = Call("POST", "/query?width=0", "count(scan)");
  ASSERT_TRUE(safe.ok());
  ASSERT_EQ(safe->status, 200);
  EXPECT_EQ(safe->Header("x-mrsl-compiled", ""), "safe");

  // The compile metrics are exported.
  auto metrics = Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("mrsl_compile_seconds"), std::string::npos);
  EXPECT_NE(metrics->body.find("mrsl_bounds_width"), std::string::npos);
}

TEST_F(ServerSmokeTest, BadRequestsGetCleanJsonErrors) {
  auto empty = Call("POST", "/query", "   ");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->status, 400);
  auto bad_plan = Call("POST", "/query", "frobnicate(scan)");
  ASSERT_TRUE(bad_plan.ok());
  EXPECT_EQ(bad_plan->status, 400);
  EXPECT_NE(bad_plan->body.find("\"error\""), std::string::npos);
  auto bad_oracle = Call("POST", "/query?oracle=-5", "count(scan)");
  ASSERT_TRUE(bad_oracle.ok());
  EXPECT_EQ(bad_oracle->status, 400);
  auto bad_width = Call("POST", "/query?width=2", "count(scan)");
  ASSERT_TRUE(bad_width.ok());
  EXPECT_EQ(bad_width->status, 400);
  auto bad_budget = Call("POST", "/query?budget_ms=junk", "count(scan)");
  ASSERT_TRUE(bad_budget.ok());
  EXPECT_EQ(bad_budget->status, 400);
  auto bad_trace = Call("POST", "/query?trace=2", "count(scan)");
  ASSERT_TRUE(bad_trace.ok());
  EXPECT_EQ(bad_trace->status, 400);
  auto bad_delta = Call("POST", "/update", "not,a,delta\n");
  ASSERT_TRUE(bad_delta.ok());
  EXPECT_EQ(bad_delta->status, 400);
}

TEST_F(ServerSmokeTest, UpdateCommitsAndInvalidatesQueries) {
  auto before = Call("POST", "/query", CountPlan());
  ASSERT_TRUE(before.ok());

  auto update = Call("POST", "/update", InsertDeltaCsv());
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  ASSERT_EQ(update->status, 200) << update->body;
  EXPECT_NE(update->body.find("\"epoch\":2"), std::string::npos);
  EXPECT_NE(update->body.find("\"components_reinferred\":1"),
            std::string::npos);
  EXPECT_EQ(update->Header("x-mrsl-epoch", ""), "2");

  auto after = Call("POST", "/query", CountPlan());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->Header("x-mrsl-epoch", ""), "2");
  // The inserted row has attr0 = label(1): the count of attr0 = label(0)
  // rows is unchanged, and the entry may even have carried forward — but
  // the epoch stamp in the body must move.
  EXPECT_NE(after->body.find("\"epoch\":2"), std::string::npos);
}

// Concurrent index-addressed updates can't silently hit shifted rows:
// the loser of an epoch race gets 409, not a wrong-row mutation.
TEST_F(ServerSmokeTest, StaleRowAddressedUpdateAnswers409) {
  // A delete delta is row-addressed, so it defaults to a CAS on the
  // epoch it was parsed against. Pin epoch 1 explicitly, commit an
  // insert in between, then watch the stale delete bounce.
  std::string delete_csv = "op,row";
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    delete_csv += "," + schema_.attr(a).name();
  }
  delete_csv += "\ndelete,8,,,,\n";

  ASSERT_EQ(Call("POST", "/update", InsertDeltaCsv())->status, 200);

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto stale = client.RoundTrip("POST", "/update", delete_csv,
                                "text/csv", {{"X-Mrsl-Epoch", "1"}});
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->status, 409);
  EXPECT_NE(stale->body.find("re-read"), std::string::npos);
  EXPECT_EQ(store_->epoch(), 2u);  // nothing applied

  // Addressed against the current epoch it applies.
  auto fresh = client.RoundTrip("POST", "/update", delete_csv,
                                "text/csv", {{"X-Mrsl-Epoch", "2"}});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->status, 200) << fresh->body;
  EXPECT_EQ(store_->epoch(), 3u);

  // Pure inserts commute and need no pin even across epochs.
  auto insert = client.RoundTrip("POST", "/update", InsertDeltaCsv(),
                                 "text/csv");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->status, 200) << insert->body;
}

TEST_F(ServerSmokeTest, SnapshotEndpointServesLoadableBytes) {
  auto resp = Call("GET", "/snapshot");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  EXPECT_EQ(resp->Header("content-type", ""), "application/octet-stream");
  auto image = DeserializeSnapshot(resp->body);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->epoch, 1u);
  EXPECT_EQ(image->base.num_rows(), 9u);

  // The served bytes restore a store that answers identically.
  Engine engine2(&model_);
  BidStore restored(&engine2, StoreOptions());
  const std::string path = ::testing::TempDir() + "/served_snapshot.bin";
  ASSERT_TRUE(WriteFile(path, resp->body).ok());
  ASSERT_TRUE(restored.Restore(path).ok());
  auto a = store_->Query(CountPlan());
  auto b = restored.Query(CountPlan());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->eval->count.expected.lo, b->eval->count.expected.lo);
  EXPECT_EQ(a->eval->count.expected.hi, b->eval->count.expected.hi);
  std::remove(path.c_str());
}

TEST_F(ServerSmokeTest, MetricsExposePerEndpointSeries) {
  ASSERT_TRUE(Call("POST", "/query", CountPlan()).ok());
  ASSERT_TRUE(Call("POST", "/query", CountPlan()).ok());
  ASSERT_TRUE(Call("GET", "/healthz").ok());
  auto metrics = Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200);
  const std::string& text = metrics->body;
  EXPECT_NE(text.find("mrsl_http_requests_total{endpoint=\"/query\","
                      "method=\"POST\",code=\"200\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mrsl_http_request_seconds_bucket{"
                      "endpoint=\"/query\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("mrsl_query_cache_total{result=\"hit\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mrsl_query_cache_total{result=\"miss\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mrsl_query_batch_size_count"), std::string::npos);
  EXPECT_NE(text.find("mrsl_build_info{version=\"" MRSL_VERSION_STRING
                      "\"} 1"),
            std::string::npos);
  EXPECT_EQ(service_->queries_served(), 2u);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE and the /debug introspection surface.
// ---------------------------------------------------------------------------

// Finds a recorded trace in the process-wide ring by its hex id.
std::shared_ptr<const TraceContext> FindTrace(const std::string& id_hex) {
  for (const auto& t : TraceStore::Global().Recent()) {
    if (t->trace_id_hex() == id_hex) return t;
  }
  return nullptr;
}

// The span-tree invariant the EXPLAIN-ANALYZE body stands on: at every
// node of a sequential span tree, child durations sum to at most the
// parent's duration.
void ExpectChildDurationsNested(const std::vector<TraceSpanData>& spans) {
  std::vector<uint64_t> child_sum(spans.size(), 0);
  for (size_t i = 1; i < spans.size(); ++i) {
    ASSERT_LT(spans[i].parent, spans.size());
    child_sum[spans[i].parent] += spans[i].duration_ns;
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LE(child_sum[i], spans[i].duration_ns)
        << "children of '" << spans[i].name << "' overrun their parent";
  }
}

TEST_F(ServerSmokeTest, TraceReturnsSpanTreeCoveringTheQueryPath) {
  TraceStore::Global().Clear();
  // The correlated self-join: evaluation has real operator structure.
  const std::string a2 = schema_.attr(2).name();
  const std::string plan = "project(" + schema_.attr(1).name() +
                           "; join(scan; scan; " + a2 + "=" + a2 + "))";

  // Traced first (a cache miss, so the tree covers the full pipeline).
  auto traced = Call("POST", "/query?trace=1", plan);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ASSERT_EQ(traced->status, 200) << traced->body;
  const std::string id = traced->Header("x-mrsl-trace-id", "");
  ASSERT_EQ(id.size(), 16u);
  EXPECT_EQ(id.find_first_not_of("0123456789abcdef"), std::string::npos);

  // The body carries the EXPLAIN-ANALYZE tree: parse -> evaluate (with
  // per-operator children) -> combine under the "query" span.
  EXPECT_NE(traced->body.find("\"trace\":{\"trace_id\":\"" + id + "\""),
            std::string::npos);
  EXPECT_NE(traced->body.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"name\":\"evaluate\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"name\":\"combine\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"name\":\"op."), std::string::npos);
  EXPECT_NE(traced->body.find("\"rows_out\""), std::string::npos);

  // Byte-identity: the untraced answer (a cache hit on the same plan)
  // is exactly the traced body minus the trace object.
  auto plain = Call("POST", "/query", plan);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->status, 200);
  EXPECT_EQ(plain->Header("x-mrsl-cache", ""), "hit");
  EXPECT_TRUE(plain->Header("x-mrsl-trace-id", "").empty());
  EXPECT_EQ(plain->body.find("\"trace\""), std::string::npos);
  ASSERT_GE(plain->body.size(), 2u);
  const std::string shared_prefix =
      plain->body.substr(0, plain->body.size() - 2);  // minus "}\n"
  EXPECT_EQ(traced->body.compare(0, shared_prefix.size(), shared_prefix),
            0);
  EXPECT_EQ(traced->body.substr(shared_prefix.size(), 10), ",\"trace\":{");

  // The recorded trace satisfies the nesting invariant the acceptance
  // criterion pins: child durations sum to <= the parent at every node.
  auto recorded = FindTrace(id);
  ASSERT_NE(recorded, nullptr) << "forced trace not in the global ring";
  ExpectChildDurationsNested(recorded->Snapshot());
}

TEST_F(ServerSmokeTest, TraceCoversCompilePhasesWhenWidthIsSet) {
  TraceStore::Global().Clear();
  const std::string a2 = schema_.attr(2).name();
  const std::string plan = "project(" + schema_.attr(1).name() +
                           "; join(scan; scan; " + a2 + "=" + a2 + "))";
  auto traced = Call("POST", "/query?width=0&trace=1", plan);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ASSERT_EQ(traced->status, 200) << traced->body;
  // The compiled pipeline replaces the plain evaluator inside the
  // "evaluate" span: phase 1 (extensional base), phase 2 (lattice
  // refinement of the unsafe shape), then the combine stage.
  EXPECT_NE(traced->body.find("\"name\":\"evaluate\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"name\":\"phase1\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"name\":\"phase2\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"name\":\"combine\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"candidates\""), std::string::npos);

  const std::string id = traced->Header("x-mrsl-trace-id", "");
  auto recorded = FindTrace(id);
  ASSERT_NE(recorded, nullptr);
  ExpectChildDurationsNested(recorded->Snapshot());
}

TEST_F(ServerSmokeTest, DebugTracesServesTheRingInBothFormats) {
  TraceStore::Global().Clear();
  ASSERT_EQ(Call("POST", "/query?trace=1", CountPlan())->status, 200);
  ASSERT_EQ(Call("POST", "/update?trace=1", InsertDeltaCsv())->status, 200);

  auto traces = Call("GET", "/debug/traces");
  ASSERT_TRUE(traces.ok());
  ASSERT_EQ(traces->status, 200);
  EXPECT_EQ(traces->body.rfind("{\"count\":2,\"traces\":[", 0), 0u);
  EXPECT_NE(traces->body.find("\"name\":\"POST /query\""),
            std::string::npos);
  EXPECT_NE(traces->body.find("\"name\":\"POST /update\""),
            std::string::npos);
  // The update trace covers the commit pipeline.
  EXPECT_NE(traces->body.find("\"name\":\"infer\""), std::string::npos);
  EXPECT_NE(traces->body.find("\"name\":\"publish\""), std::string::npos);

  auto limited = Call("GET", "/debug/traces?limit=1");
  ASSERT_TRUE(limited.ok());
  ASSERT_EQ(limited->status, 200);
  EXPECT_EQ(limited->body.rfind("{\"count\":1,", 0), 0u);

  auto chrome = Call("GET", "/debug/traces?format=chrome");
  ASSERT_TRUE(chrome.ok());
  ASSERT_EQ(chrome->status, 200);
  EXPECT_EQ(chrome->body.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome->body.find("\"ph\":\"X\""), std::string::npos);

  EXPECT_EQ(Call("GET", "/debug/traces?format=waterfall")->status, 400);
  EXPECT_EQ(Call("GET", "/debug/traces?limit=junk")->status, 400);
}

TEST_F(ServerSmokeTest, DebugSlowLogsQueriesAboveTheThreshold) {
  // A second service over the same store with the threshold at 0 (log
  // everything); the fixture's default-250ms service would need a
  // genuinely slow query.
  StoreServiceOptions opts;
  opts.slow_query_ms = 0.0;
  StoreService slow_service(store_.get(), opts);
  HttpServer slow_server;
  slow_service.Attach(&slow_server);
  ASSERT_TRUE(slow_server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", slow_server.port()).ok());
  ASSERT_EQ(client.RoundTrip("POST", "/query?trace=1", CountPlan())->status,
            200);
  auto slow = client.RoundTrip("GET", "/debug/slow");
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow->status, 200);
  EXPECT_EQ(slow->body.rfind("{\"threshold_ms\":0,", 0), 0u) << slow->body;
  EXPECT_NE(slow->body.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(slow->body.find("\"plan\":\""), std::string::npos);
  EXPECT_NE(slow->body.find("\"elapsed_ms\":"), std::string::npos);
  // Each entry links to its statement digest and carries the
  // evaluator's resource accounting.
  EXPECT_NE(slow->body.find("\"fingerprint\":\""), std::string::npos);
  EXPECT_NE(slow->body.find("\"resources\":{\"peak_batch_bytes\":"),
            std::string::npos);
  // The request was traced, so the entry carries its span tree.
  EXPECT_NE(slow->body.find("\"spans\":{\"name\":\"query\""),
            std::string::npos);

  // The fixture's own service (threshold 250ms) logged nothing for the
  // fast cached queries above.
  auto fast = Call("GET", "/debug/slow");
  ASSERT_TRUE(fast.ok());
  EXPECT_NE(fast->body.find("\"recorded\":0"), std::string::npos);
  slow_server.Stop();
}

TEST_F(ServerSmokeTest, StatementsCollapseLiteralVariantsIntoOneDigest) {
  // Three calls of one shape — two distinct literals plus one repeat
  // (a plan-cache hit) — must fold into ONE digest with exact counts.
  const std::string attr = schema_.attr(0).name();
  const std::string q0 =
      "count(select(" + attr + "=" + schema_.attr(0).label(0) + "; scan))";
  const std::string q1 =
      "count(select(" + attr + "=" + schema_.attr(0).label(1) + "; scan))";
  ASSERT_EQ(Call("POST", "/query", q0)->status, 200);
  ASSERT_EQ(Call("POST", "/query", q1)->status, 200);
  ASSERT_EQ(Call("POST", "/query", q0)->status, 200);  // cache hit

  auto resp = Call("GET", "/debug/statements");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"tracked\":1"), std::string::npos)
      << resp->body;
  EXPECT_NE(resp->body.find("\"kind\":\"count\""), std::string::npos);
  EXPECT_NE(resp->body.find("\"calls\":3"), std::string::npos);
  EXPECT_NE(resp->body.find("\"cache_hits\":1"), std::string::npos);
  EXPECT_NE(resp->body.find("\"cache_misses\":2"), std::string::npos);
  // The digest text is the placeholder shape, not any literal.
  EXPECT_NE(resp->body.find(attr + "=?; scan(0)"), std::string::npos);
  EXPECT_EQ(resp->body.find(schema_.attr(0).label(0)), std::string::npos);

  // Aggregates are monotone: one more call, same digest.
  ASSERT_EQ(Call("POST", "/query", q1)->status, 200);
  auto again = Call("GET", "/debug/statements");
  EXPECT_NE(again->body.find("\"calls\":4"), std::string::npos);
  EXPECT_NE(again->body.find("\"cache_hits\":2"), std::string::npos);
}

TEST_F(ServerSmokeTest, StatementsValidateSortFormatAndLimit) {
  ASSERT_EQ(Call("POST", "/query", CountPlan())->status, 200);
  ASSERT_EQ(Call("POST", "/query", "exists(scan)")->status, 200);

  EXPECT_EQ(Call("GET", "/debug/statements?sort=nope")->status, 400);
  EXPECT_EQ(Call("GET", "/debug/statements?format=xml")->status, 400);
  EXPECT_EQ(Call("GET", "/debug/statements?limit=-1")->status, 400);
  EXPECT_EQ(Call("GET", "/debug/statements?limit=abc")->status, 400);

  // TSV is the `mrsl top` feed: header first, one row per digest.
  auto tsv = Call("GET", "/debug/statements?format=tsv");
  ASSERT_EQ(tsv->status, 200);
  EXPECT_NE(tsv->Header("content-type", "").find("tab-separated"),
            std::string::npos);
  EXPECT_EQ(tsv->body.rfind("fingerprint\tkind\tcalls", 0), 0u);

  // ?limit truncates the listing but reports the full tracked count.
  auto limited = Call("GET", "/debug/statements?limit=1");
  ASSERT_EQ(limited->status, 200);
  EXPECT_NE(limited->body.find("\"tracked\":2"), std::string::npos);
  size_t first = limited->body.find("\"fingerprint\":");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(limited->body.find("\"fingerprint\":", first + 1),
            std::string::npos);

  // sort=calls puts the busier digest first.
  ASSERT_EQ(Call("POST", "/query", CountPlan())->status, 200);
  auto by_calls = Call("GET", "/debug/statements?sort=calls");
  ASSERT_EQ(by_calls->status, 200);
  size_t count_pos = by_calls->body.find("\"kind\":\"count\"");
  size_t exists_pos = by_calls->body.find("\"kind\":\"exists\"");
  ASSERT_NE(count_pos, std::string::npos);
  ASSERT_NE(exists_pos, std::string::npos);
  EXPECT_LT(count_pos, exists_pos);
}

TEST_F(ServerSmokeTest, StatementsResetDropsTheDigests) {
  ASSERT_EQ(Call("POST", "/query", CountPlan())->status, 200);
  auto reset = Call("POST", "/debug/statements/reset");
  ASSERT_EQ(reset->status, 200);
  EXPECT_EQ(reset->body, "{\"reset\":true,\"dropped\":1}\n");
  auto resp = Call("GET", "/debug/statements");
  EXPECT_NE(resp->body.find("\"tracked\":0"), std::string::npos);
}

TEST_F(ServerSmokeTest, StatementEvictionAtCapBumpsTheCounter) {
  // Capacity 1 floors at one digest per shard (16 shards); 18 distinct
  // shapes pigeonhole at least two evictions somewhere.
  StoreServiceOptions opts;
  opts.statement_capacity = 1;
  StoreService capped_service(store_.get(), opts);
  HttpServer capped_server;
  capped_service.Attach(&capped_server);
  ASSERT_TRUE(capped_server.Start().ok());

  std::vector<std::string> shapes;
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    const std::string sel = "select(" + schema_.attr(a).name() + "=" +
                            schema_.attr(a).label(0) + "; scan)";
    shapes.push_back("count(" + sel + ")");
    shapes.push_back("exists(" + sel + ")");
    shapes.push_back(sel);
  }
  const std::string pair = "select(" + schema_.attr(0).name() + "=" +
                           schema_.attr(0).label(0) + " & " +
                           schema_.attr(1).name() + "=" +
                           schema_.attr(1).label(0) + "; scan)";
  shapes.push_back("count(" + pair + ")");
  shapes.push_back("exists(" + pair + ")");
  shapes.push_back(pair);
  shapes.push_back("count(scan)");
  shapes.push_back("exists(scan)");
  shapes.push_back("scan");
  ASSERT_GE(shapes.size(), 17u);

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", capped_server.port()).ok());
  for (const std::string& shape : shapes) {
    ASSERT_EQ(client.RoundTrip("POST", "/query", shape)->status, 200)
        << shape;
  }

  auto resp = client.RoundTrip("GET", "/debug/statements");
  ASSERT_TRUE(resp.ok());
  const std::string evictions_key = "\"evictions\":";
  size_t at = resp->body.find(evictions_key);
  ASSERT_NE(at, std::string::npos);
  EXPECT_GT(std::atoll(resp->body.c_str() + at + evictions_key.size()), 0)
      << resp->body;

  // The registry mirrors both series.
  auto metrics = client.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("mrsl_statements_tracked"),
            std::string::npos);
  // Anchor on the sample line, not the # HELP line.
  size_t evm = metrics->body.find("\nmrsl_statement_evictions_total ");
  ASSERT_NE(evm, std::string::npos);
  EXPECT_GT(
      std::atof(metrics->body.c_str() + evm +
                std::strlen("\nmrsl_statement_evictions_total ")),
      0.0);
  capped_server.Stop();
}

TEST_F(ServerSmokeTest, MetricsExposeUptimeAndProcessStart) {
  auto resp = Call("GET", "/metrics");
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->body.find("# TYPE mrsl_uptime_seconds gauge"),
            std::string::npos);
  EXPECT_NE(resp->body.find("mrsl_process_start_time_seconds"),
            std::string::npos);
  EXPECT_NE(resp->body.find("mrsl_statements_tracked"), std::string::npos);
  EXPECT_NE(resp->body.find("mrsl_statement_evictions_total"),
            std::string::npos);
}

TEST_F(ServerSmokeTest, TracedQueriesCarryFingerprintAndTraceIdHeader) {
  auto resp = Call("POST", "/query?trace=1", CountPlan());
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  // The trace id echoes in a response header (the /debug/slow and log
  // join key) and the trace object names the statement fingerprint.
  const std::string trace_id = resp->Header("x-mrsl-trace-id", "");
  EXPECT_EQ(trace_id.size(), 16u) << trace_id;
  EXPECT_NE(resp->body.find("\"trace\":{\"trace_id\":\"" + trace_id +
                            "\",\"fingerprint\":\""),
            std::string::npos)
      << resp->body;
}

// The acceptance-criterion test: queries racing a commit see exactly the
// pre- or the post-commit epoch, byte for byte — never a torn mix.
TEST_F(ServerSmokeTest, QueryDuringCommitSeesWholeEpochsOnly) {
  // Two plans whose bodies both change shape across commits would widen
  // coverage, but one high-traffic plan keeps the loop tight; epoch
  // stamps inside the body catch any tear.
  const std::string plan = CountPlan();

  for (int cycle = 0; cycle < 3; ++cycle) {
    auto pre = Call("POST", "/query", plan);
    ASSERT_TRUE(pre.ok());
    ASSERT_EQ(pre->status, 200);

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    std::vector<std::vector<std::string>> observed(4);
    for (int r = 0; r < 4; ++r) {
      readers.emplace_back([&, r]() {
        HttpClient client;
        if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
        while (!stop.load(std::memory_order_relaxed)) {
          auto resp = client.RoundTrip("POST", "/query", plan);
          if (!resp.ok() || resp->status != 200) return;
          observed[r].push_back(resp->body);
        }
      });
    }

    // Give the readers a moment to race, then commit underneath them.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto update = Call("POST", "/update", InsertDeltaCsv());
    ASSERT_TRUE(update.ok());
    ASSERT_EQ(update->status, 200) << update->body;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true);
    for (auto& t : readers) t.join();

    auto post = Call("POST", "/query", plan);
    ASSERT_TRUE(post.ok());
    ASSERT_EQ(post->status, 200);
    ASSERT_NE(post->body, pre->body);  // the epoch stamp moved

    size_t total = 0;
    for (const auto& bodies : observed) {
      for (const std::string& body : bodies) {
        ++total;
        EXPECT_TRUE(body == pre->body || body == post->body)
            << "torn response in cycle " << cycle << ": " << body;
      }
    }
    EXPECT_GT(total, 0u) << "readers never observed the race";
  }
}

TEST_F(ServerSmokeTest, DrainWaitsForInFlightQueries) {
  std::atomic<int> completed{0};
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&]() {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      auto resp = client.RoundTrip("POST", "/query", CountPlan());
      if (resp.ok() && resp->status == 200) completed.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server_->Stop();
  for (auto& t : callers) t.join();
  // Every request that was admitted before the drain got its answer;
  // none were dropped mid-handling. (Some callers may have raced the
  // listen-socket close and never connected — that's fine.)
  EXPECT_EQ(server_->requests_served(),
            static_cast<uint64_t>(completed.load()));
}

}  // namespace
}  // namespace mrsl
