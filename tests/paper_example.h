// Shared fixture data: the paper's running example (Fig 1) — a fictional
// matchmaking relation with attributes age/edu/inc/nw, 8 complete points
// and 9 incomplete tuples.

#ifndef MRSL_TESTS_PAPER_EXAMPLE_H_
#define MRSL_TESTS_PAPER_EXAMPLE_H_

#include <gtest/gtest.h>

#include <string_view>

#include "relational/relation.h"

namespace mrsl {

// Exactly the rows t1..t17 of Fig 1, in order.
inline constexpr std::string_view kFig1Csv =
    "age,edu,inc,nw\n"
    "20,HS,?,?\n"      // t1
    "20,BS,50K,100K\n"  // t2
    "20,?,50K,?\n"      // t3
    "20,HS,100K,500K\n" // t4
    "20,?,?,?\n"        // t5
    "20,HS,50K,100K\n"  // t6
    "20,HS,50K,500K\n"  // t7
    "?,HS,?,?\n"        // t8
    "30,BS,100K,100K\n" // t9
    "30,?,100K,?\n"     // t10
    "30,HS,?,?\n"       // t11
    "30,MS,?,?\n"       // t12
    "40,BS,100K,100K\n" // t13
    "40,HS,?,?\n"       // t14
    "40,BS,50K,500K\n"  // t15
    "40,HS,?,500K\n"    // t16
    "40,HS,100K,500K\n";// t17

/// Loads the Fig 1 relation; aborts the test on failure.
inline Relation LoadFig1() {
  auto rel = Relation::FromCsv(kFig1Csv);
  if (!rel.ok()) {
    ADD_FAILURE() << "failed to parse Fig 1 CSV: "
                  << rel.status().ToString();
    return Relation();
  }
  return std::move(rel).value();
}

}  // namespace mrsl

#endif  // MRSL_TESTS_PAPER_EXAMPLE_H_
