// Tests for Tuple: completeness, matching (Def 2.3), subsumption
// (Def 2.4), plus randomized partial-order property tests.

#include "relational/tuple.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mrsl {
namespace {

Tuple T(std::vector<ValueId> v) { return Tuple(std::move(v)); }

TEST(TupleTest, AllMissingConstructor) {
  Tuple t(4);
  EXPECT_EQ(t.num_attrs(), 4u);
  EXPECT_FALSE(t.IsComplete());
  EXPECT_EQ(t.NumMissing(), 4u);
  EXPECT_EQ(t.CompleteMask(), 0u);
}

TEST(TupleTest, CompleteMaskAndMissingAttrs) {
  Tuple t = T({1, kMissingValue, 2, kMissingValue});
  EXPECT_EQ(t.CompleteMask(), 0b0101u);
  EXPECT_EQ(t.MissingAttrs(), (std::vector<AttrId>{1, 3}));
  EXPECT_EQ(t.AssignedAttrs(), (std::vector<AttrId>{0, 2}));
  EXPECT_EQ(t.NumMissing(), 2u);
  EXPECT_FALSE(t.IsComplete());
}

TEST(TupleTest, CompleteTupleIsPoint) {
  Tuple t = T({0, 1, 2});
  EXPECT_TRUE(t.IsComplete());
  EXPECT_EQ(t.NumMissing(), 0u);
}

// Fig 1: t4 = <20,HS,100K,500K> matches t1 = <20,HS,?,?>, t2 does not.
TEST(TupleTest, MatchingFollowsPaperExample) {
  // age: 20=0,30=1,40=2; edu: HS=0,BS=1,MS=2; inc: 50K=0,100K=1;
  // nw: 100K=0,500K=1.
  Tuple t1 = T({0, 0, kMissingValue, kMissingValue});
  Tuple t2 = T({0, 1, 0, 0});
  Tuple t4 = T({0, 0, 1, 1});
  EXPECT_TRUE(t1.MatchedBy(t4));
  EXPECT_FALSE(t1.MatchedBy(t2));
}

TEST(TupleTest, EverythingMatchesAllMissing) {
  Tuple t_star(3);
  EXPECT_TRUE(t_star.MatchedBy(T({0, 1, 2})));
  EXPECT_TRUE(t_star.MatchedBy(T({2, 0, 0})));
}

// Fig 1 narrative: t1 < t5 and t3 < t5; t1 and t3 are incomparable.
TEST(TupleTest, SubsumptionFollowsPaperExample) {
  Tuple t1 = T({0, 0, kMissingValue, kMissingValue});   // age=20,edu=HS
  Tuple t3 = T({0, kMissingValue, 0, kMissingValue});   // age=20,inc=50K
  Tuple t5 = T({0, kMissingValue, kMissingValue, kMissingValue});  // age=20
  EXPECT_TRUE(t5.Subsumes(t1));
  EXPECT_TRUE(t5.Subsumes(t3));
  EXPECT_FALSE(t1.Subsumes(t3));
  EXPECT_FALSE(t3.Subsumes(t1));
  EXPECT_FALSE(t1.Subsumes(t5));
}

TEST(TupleTest, SubsumptionRequiresAgreement) {
  Tuple general = T({0, kMissingValue});
  Tuple specific_agree = T({0, 1});
  Tuple specific_disagree = T({1, 1});
  EXPECT_TRUE(general.Subsumes(specific_agree));
  EXPECT_FALSE(general.Subsumes(specific_disagree));
}

TEST(TupleTest, SubsumptionIsIrreflexive) {
  Tuple t = T({0, kMissingValue, 1});
  EXPECT_FALSE(t.Subsumes(t));
  EXPECT_TRUE(t.SubsumesOrEquals(t));
}

TEST(TupleTest, SubsumesOrEqualsAcceptsProperSubsumption) {
  Tuple g = T({0, kMissingValue});
  Tuple s = T({0, 1});
  EXPECT_TRUE(g.SubsumesOrEquals(s));
  EXPECT_FALSE(s.SubsumesOrEquals(g));
}

TEST(TupleTest, AgreesOn) {
  Tuple a = T({0, 1, 2});
  Tuple b = T({0, 9, 2});
  EXPECT_TRUE(a.AgreesOn(b, 0b101));
  EXPECT_FALSE(a.AgreesOn(b, 0b111));
  EXPECT_TRUE(a.AgreesOn(b, 0));
}

TEST(TupleTest, ToStringRendersMissingAsQuestionMark) {
  auto schema = Schema::Create({Attribute("age", {"20", "30"}),
                                Attribute("inc", {"50K", "100K"})});
  ASSERT_TRUE(schema.ok());
  Tuple t = T({1, kMissingValue});
  EXPECT_EQ(t.ToString(*schema), "(age=30, inc=?)");
}

TEST(TupleTest, HashEqualForEqualTuples) {
  TupleHash h;
  EXPECT_EQ(h(T({1, 2, kMissingValue})), h(T({1, 2, kMissingValue})));
  EXPECT_NE(h(T({1, 2, 3})), h(T({3, 2, 1})));
}

// ---- Property tests: subsumption is a strict partial order ----

class SubsumptionPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Tuple RandomTuple(Rng* rng, size_t n, double missing_prob) {
    Tuple t(n);
    for (size_t i = 0; i < n; ++i) {
      if (!rng->Bernoulli(missing_prob)) {
        t.set_value(static_cast<AttrId>(i),
                    static_cast<ValueId>(rng->UniformInt(3)));
      }
    }
    return t;
  }
};

TEST_P(SubsumptionPropertyTest, TransitivityAndAntisymmetry) {
  Rng rng(GetParam());
  constexpr size_t kAttrs = 5;
  std::vector<Tuple> tuples;
  for (int i = 0; i < 24; ++i) {
    tuples.push_back(RandomTuple(&rng, kAttrs, 0.5));
  }
  for (const Tuple& a : tuples) {
    for (const Tuple& b : tuples) {
      // Antisymmetry of strict subsumption.
      if (a.Subsumes(b)) {
        EXPECT_FALSE(b.Subsumes(a));
      }
      for (const Tuple& c : tuples) {
        // Transitivity.
        if (a.Subsumes(b) && b.Subsumes(c)) {
          EXPECT_TRUE(a.Subsumes(c));
        }
      }
    }
  }
}

TEST_P(SubsumptionPropertyTest, SubsumerMatchedBySupersetOfPoints) {
  // If g subsumes s, then every point matching s also matches g.
  Rng rng(GetParam() + 1000);
  constexpr size_t kAttrs = 4;
  for (int trial = 0; trial < 50; ++trial) {
    Tuple g = RandomTuple(&rng, kAttrs, 0.6);
    Tuple s = RandomTuple(&rng, kAttrs, 0.3);
    if (!g.Subsumes(s)) continue;
    for (int p = 0; p < 20; ++p) {
      Tuple point(kAttrs);
      for (size_t i = 0; i < kAttrs; ++i) {
        point.set_value(static_cast<AttrId>(i),
                        static_cast<ValueId>(rng.UniformInt(3)));
      }
      if (s.MatchedBy(point)) {
        EXPECT_TRUE(g.MatchedBy(point));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsumptionPropertyTest,
                         ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace mrsl
