// Tests for the mixed-radix codec.

#include "util/mixed_radix.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace mrsl {
namespace {

TEST(MixedRadixTest, EmptyCodec) {
  MixedRadix mr((std::vector<uint32_t>()));
  EXPECT_EQ(mr.Size(), 1u);
  EXPECT_EQ(mr.num_positions(), 0u);
  EXPECT_EQ(mr.Encode({}), 0u);
}

TEST(MixedRadixTest, SinglePosition) {
  MixedRadix mr({5});
  EXPECT_EQ(mr.Size(), 5u);
  for (int32_t v = 0; v < 5; ++v) {
    EXPECT_EQ(mr.Encode({v}), static_cast<uint64_t>(v));
  }
}

TEST(MixedRadixTest, SizeIsProduct) {
  MixedRadix mr({2, 3, 4});
  EXPECT_EQ(mr.Size(), 24u);
}

TEST(MixedRadixTest, EncodeIsBijective) {
  MixedRadix mr({3, 2, 4});
  std::vector<bool> seen(mr.Size(), false);
  for (int32_t a = 0; a < 3; ++a) {
    for (int32_t b = 0; b < 2; ++b) {
      for (int32_t c = 0; c < 4; ++c) {
        uint64_t code = mr.Encode({a, b, c});
        ASSERT_LT(code, mr.Size());
        EXPECT_FALSE(seen[code]);
        seen[code] = true;
      }
    }
  }
}

TEST(MixedRadixTest, DecodeInvertsEncode) {
  MixedRadix mr({4, 5, 2, 3});
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int32_t> digits(4);
    for (size_t i = 0; i < 4; ++i) {
      digits[i] = static_cast<int32_t>(rng.UniformInt(mr.card(i)));
    }
    EXPECT_EQ(mr.Decode(mr.Encode(digits)), digits);
  }
}

TEST(MixedRadixTest, FirstPositionMostSignificant) {
  MixedRadix mr({2, 10});
  EXPECT_EQ(mr.Encode({1, 0}), 10u);
  EXPECT_EQ(mr.Encode({0, 9}), 9u);
}

TEST(MixedRadixTest, EncodeWithZeroIgnoresPosition) {
  MixedRadix mr({3, 4, 5});
  EXPECT_EQ(mr.EncodeWithZero({2, 3, 4}, 1), mr.Encode({2, 0, 4}));
  EXPECT_EQ(mr.EncodeWithZero({2, 3, 4}, 0), mr.Encode({0, 3, 4}));
  // Identical except at the zeroed slot -> identical keys.
  EXPECT_EQ(mr.EncodeWithZero({2, 0, 4}, 1), mr.EncodeWithZero({2, 3, 4}, 1));
  // Different elsewhere -> different keys.
  EXPECT_NE(mr.EncodeWithZero({1, 3, 4}, 1), mr.EncodeWithZero({2, 3, 4}, 1));
}

TEST(MixedRadixTest, SaturationDetected) {
  // 2^64 overflows: 33 positions of cardinality 4 = 2^66.
  std::vector<uint32_t> cards(33, 4);
  MixedRadix mr(cards);
  EXPECT_TRUE(mr.Saturated());
}

TEST(MixedRadixTest, LargeButUnsaturated) {
  std::vector<uint32_t> cards(10, 10);  // 10^10 < 2^64
  MixedRadix mr(cards);
  EXPECT_FALSE(mr.Saturated());
  EXPECT_EQ(mr.Size(), 10000000000ULL);
}

TEST(MixedRadixTest, DecodeIntoBuffer) {
  MixedRadix mr({2, 3});
  int32_t buf[2];
  mr.DecodeInto(5, buf);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
}

}  // namespace
}  // namespace mrsl
