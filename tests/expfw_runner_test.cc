// Tests for the experiment runners' edge cases and protocol compliance
// (the happy-path accuracy checks live in integration_test).

#include "expfw/runner.h"

#include <gtest/gtest.h>

namespace mrsl {
namespace {

TEST(RunnerTest, UnknownNetworkFailsCleanly) {
  LearnExperimentConfig learn;
  learn.network = "BN999";
  EXPECT_EQ(RunLearnExperiment(learn).status().code(),
            StatusCode::kNotFound);

  SingleAttrConfig single;
  single.network = "nope";
  EXPECT_EQ(RunSingleAttrExperiment(single).status().code(),
            StatusCode::kNotFound);

  MultiAttrConfig multi;
  multi.network = "";
  EXPECT_FALSE(RunMultiAttrExperiment(multi).ok());
}

TEST(RunnerTest, RepetitionCountsAreHonored) {
  // tuples_evaluated = instances x splits x min(test size, cap).
  SingleAttrConfig config;
  config.network = "BN8";
  config.train_size = 1800;  // test split = 200 rows
  config.support = 0.02;
  config.reps.num_instances = 2;
  config.reps.num_splits = 3;
  config.reps.max_eval_tuples = 50;
  auto result = RunSingleAttrExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples_evaluated, 2u * 3u * 50u);
}

TEST(RunnerTest, UncappedEvaluationUsesWholeTestSplit) {
  SingleAttrConfig config;
  config.network = "BN8";
  config.train_size = 900;  // test split = 100 rows
  config.support = 0.02;
  config.reps.num_instances = 1;
  config.reps.num_splits = 1;
  config.reps.max_eval_tuples = 0;
  auto result = RunSingleAttrExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples_evaluated, 100u);
}

TEST(RunnerTest, MasterSeedChangesResults) {
  SingleAttrConfig config;
  config.network = "BN9";
  config.train_size = 2000;
  config.support = 0.02;
  config.reps.num_instances = 1;
  config.reps.num_splits = 1;
  config.reps.max_eval_tuples = 100;
  auto a = RunSingleAttrExperiment(config);
  config.reps.master_seed = 999;
  auto b = RunSingleAttrExperiment(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Different instances/splits: results should differ (not bitwise-equal).
  EXPECT_NE(a->kl, b->kl);
}

TEST(RunnerTest, LearnExperimentAveragesOverRepetitions) {
  LearnExperimentConfig config;
  config.network = "BN8";
  config.train_size = 1000;
  config.support = 0.05;
  config.reps.num_instances = 3;
  config.reps.num_splits = 2;
  auto result = RunLearnExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->model_size, 0.0);
  EXPECT_GT(result->itemsets, 0.0);
  // BN8 at theta=0.05: the model comfortably fits within the full
  // itemset lattice of a 4-attr binary schema (3^4 = 81 bodies x 4).
  EXPECT_LT(result->model_size, 400.0);
}

TEST(RunnerTest, MultiAttrRunnerRespectsMode) {
  MultiAttrConfig config;
  config.network = "BN8";
  config.train_size = 2000;
  config.support = 0.02;
  config.num_missing = 2;
  config.gibbs.samples = 100;
  config.gibbs.burn_in = 20;
  config.reps.num_instances = 1;
  config.reps.num_splits = 1;
  config.reps.max_eval_tuples = 30;

  config.mode = SamplingMode::kIndependentProduct;
  auto product = RunMultiAttrExperiment(config);
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->stats.points_sampled, 0u);  // no sampling at all

  config.mode = SamplingMode::kTupleAtATime;
  auto tuple = RunMultiAttrExperiment(config);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->stats.points_sampled,
            tuple->stats.distinct_tuples * (100 + 20));
}

}  // namespace
}  // namespace mrsl
