// Tests for Status / Result error propagation.

#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/result.h"

namespace mrsl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing key").message(), "missing key");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::Corruption("bad page").ToString(),
            "Corruption: bad page");
}

TEST(StatusTest, StreamInsertionMatchesToString) {
  std::ostringstream os;
  os << "error: " << Status::NotFound("missing epoch") << "!";
  EXPECT_EQ(os.str(), "error: NotFound: missing epoch!");
  std::ostringstream ok;
  ok << Status::OK();
  EXPECT_EQ(ok.str(), "OK");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::Internal("boom");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    MRSL_RETURN_IF_ERROR(inner(fail));
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
  EXPECT_EQ(outer(false).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(StatusCodeTest, AllNamesDistinct) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_NE(StatusCodeName(StatusCode::kIOError),
            StatusCodeName(StatusCode::kCorruption));
}

}  // namespace
}  // namespace mrsl
