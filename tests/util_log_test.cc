// Tests for the structured logger (util/log.h): level-spec parsing,
// per-component filtering, both output formats against a memory-backed
// sink, typed field rendering with JSON escaping, and the token-bucket
// rate limiter (suppression counts, error exemption).

#include "util/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace mrsl {
namespace {

// A Logger writing into a tmpfile; Contents() drains what was emitted.
class CapturedLogger {
 public:
  explicit CapturedLogger(LogOptions options) : sink_(std::tmpfile()) {
    EXPECT_NE(sink_, nullptr);
    options.sink = sink_;
    logger_.Configure(std::move(options));
  }
  ~CapturedLogger() {
    if (sink_ != nullptr) std::fclose(sink_);
  }

  Logger& logger() { return logger_; }

  std::string Contents() {
    std::fflush(sink_);
    long size = std::ftell(sink_);
    std::rewind(sink_);
    std::string out(static_cast<size_t>(size), '\0');
    EXPECT_EQ(std::fread(out.data(), 1, out.size(), sink_), out.size());
    std::fseek(sink_, 0, SEEK_END);
    return out;
  }

 private:
  FILE* sink_;
  Logger logger_;
};

TEST(LogLevelTest, ParseNamesAndSpecs) {
  EXPECT_EQ(*ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(*ParseLogLevel("WARN"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose").ok());

  LogOptions options;
  ASSERT_TRUE(ParseLogLevelSpec("warn,wal=debug,server=error",
                                &options).ok());
  EXPECT_EQ(options.level, LogLevel::kWarn);
  EXPECT_EQ(options.component_levels.at("wal"), LogLevel::kDebug);
  EXPECT_EQ(options.component_levels.at("server"), LogLevel::kError);
  EXPECT_FALSE(ParseLogLevelSpec("info,wal=verbose", &options).ok());
  EXPECT_FALSE(ParseLogLevelSpec("=debug", &options).ok());
}

TEST(LoggerTest, LevelsFilterPerComponent) {
  LogOptions options;
  options.level = LogLevel::kWarn;
  options.component_levels["wal"] = LogLevel::kDebug;
  CapturedLogger captured(options);
  Logger& log = captured.logger();

  EXPECT_TRUE(log.Enabled("wal", LogLevel::kDebug));
  EXPECT_FALSE(log.Enabled("server", LogLevel::kInfo));
  EXPECT_TRUE(log.Enabled("server", LogLevel::kError));

  log.Log(LogLevel::kDebug, "wal", "fsync scheduled");
  log.Log(LogLevel::kInfo, "server", "dropped by level");
  log.Log(LogLevel::kError, "server", "kept");
  std::string out = captured.Contents();
  EXPECT_NE(out.find("fsync scheduled"), std::string::npos);
  EXPECT_EQ(out.find("dropped by level"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
  EXPECT_EQ(log.emitted(), 2u);
}

TEST(LoggerTest, TextFormatRendersFields) {
  LogOptions options;
  options.level = LogLevel::kDebug;
  CapturedLogger captured(options);
  captured.logger().Log(LogLevel::kWarn, "query", "slow query",
                        {{"elapsed_ms", 12.5},
                         {"epoch", static_cast<uint64_t>(3)},
                         {"plan", "count(scan)"}});
  std::string out = captured.Contents();
  EXPECT_NE(out.find("warn"), std::string::npos);
  EXPECT_NE(out.find("query: slow query"), std::string::npos);
  EXPECT_NE(out.find("elapsed_ms=12.5"), std::string::npos);
  EXPECT_NE(out.find("epoch=3"), std::string::npos);
  EXPECT_NE(out.find("plan=count(scan)"), std::string::npos);
  // One line, ISO-8601 UTC timestamp up front.
  EXPECT_EQ(out.find('\n'), out.size() - 1);
  EXPECT_NE(out.find("T"), std::string::npos);
  EXPECT_NE(out.find("Z "), std::string::npos);
}

TEST(LoggerTest, JsonFormatEscapesAndTypes) {
  LogOptions options;
  options.level = LogLevel::kDebug;
  options.json = true;
  CapturedLogger captured(options);
  captured.logger().Log(LogLevel::kInfo, "server", "he said \"hi\"\n",
                        {{"count", 42}, {"ratio", 0.5}, {"name", "a\tb"}});
  std::string out = captured.Contents();
  EXPECT_EQ(out.rfind("{\"ts\":\"", 0), 0u) << out;
  EXPECT_NE(out.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(out.find("\"component\":\"server\""), std::string::npos);
  EXPECT_NE(out.find("\"msg\":\"he said \\\"hi\\\"\\n\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":42"), std::string::npos);     // unquoted
  EXPECT_NE(out.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"a\\tb\""), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(LoggerTest, TokenBucketSuppressesBurstsButNeverErrors) {
  LogOptions options;
  options.level = LogLevel::kDebug;
  options.rate_per_sec = 0.0001;  // effectively no refill in-test
  options.burst = 2.0;
  CapturedLogger captured(options);
  Logger& log = captured.logger();

  for (int i = 0; i < 5; ++i) {
    log.Log(LogLevel::kWarn, "server", "spam " + std::to_string(i));
  }
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.suppressed(), 3u);

  // Errors bypass the bucket entirely.
  log.Log(LogLevel::kError, "server", "outage detail");
  EXPECT_EQ(log.emitted(), 3u);
  std::string out = captured.Contents();
  EXPECT_NE(out.find("spam 0"), std::string::npos);
  EXPECT_NE(out.find("spam 1"), std::string::npos);
  EXPECT_EQ(out.find("spam 2"), std::string::npos);
  EXPECT_NE(out.find("outage detail"), std::string::npos);

  // Buckets are per (component, level): a different component still has
  // its full burst, and its first emitted record carries no suppressed
  // marker.
  log.Log(LogLevel::kWarn, "wal", "fresh bucket");
  EXPECT_EQ(log.suppressed(), 3u);
}

TEST(LoggerTest, SuppressedCountSurfacesOnTheNextRecord) {
  LogOptions options;
  options.level = LogLevel::kDebug;
  options.rate_per_sec = 0.0001;
  options.burst = 1.0;
  CapturedLogger captured(options);
  Logger& log = captured.logger();
  log.Log(LogLevel::kInfo, "server", "first");
  log.Log(LogLevel::kInfo, "server", "muted a");
  log.Log(LogLevel::kInfo, "server", "muted b");
  std::string out = captured.Contents();
  // The two muted records never appear in the stream, but the global
  // counter records them (the next non-error record from this bucket
  // would carry "suppressed=2").
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_EQ(out.find("muted"), std::string::npos);
  EXPECT_EQ(log.suppressed(), 2u);
}

TEST(ProcessClockTest, UptimeAndStartAreConsistent) {
  EXPECT_GT(ProcessStartUnixSeconds(), 1.0e9);   // after 2001
  EXPECT_GE(ProcessUptimeSeconds(), 0.0);
  double a = ProcessUptimeSeconds();
  double b = ProcessUptimeSeconds();
  EXPECT_GE(b, a);  // monotone
}

}  // namespace
}  // namespace mrsl
